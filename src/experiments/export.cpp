#include "experiments/export.hpp"

#include "util/csv.hpp"

namespace bml {

namespace {

void ensure_directory(const std::filesystem::path& directory) {
  std::filesystem::create_directories(directory);
}

}  // namespace

void export_table1(const Table1Result& result,
                   const std::filesystem::path& directory) {
  ensure_directory(directory);
  CsvWriter w;
  w.set_header({"name", "measured_max_perf", "truth_max_perf",
                "measured_idle_w", "truth_idle_w", "measured_max_w",
                "truth_max_w", "on_s", "on_j", "off_s", "off_j"});
  for (const ProfiledArch& row : result.rows) {
    w.add_row(std::vector<std::string>{
        row.truth.name(), std::to_string(row.measured.max_perf()),
        std::to_string(row.truth.max_perf()),
        std::to_string(row.measured.idle_power()),
        std::to_string(row.truth.idle_power()),
        std::to_string(row.measured.max_power()),
        std::to_string(row.truth.max_power()),
        std::to_string(row.measured.on_cost().duration),
        std::to_string(row.measured.on_cost().energy),
        std::to_string(row.measured.off_cost().duration),
        std::to_string(row.measured.off_cost().energy)});
  }
  w.write_file(directory / "table1.csv");
}

void export_fig1(const Fig1Result& result,
                 const std::filesystem::path& directory) {
  ensure_directory(directory);
  CsvWriter w;
  std::vector<std::string> header{"rate"};
  for (const ArchitectureProfile& arch : result.input)
    header.push_back(arch.name());
  w.set_header(std::move(header));
  const std::size_t points = result.homogeneous_series.front().size();
  for (std::size_t i = 0; i < points; ++i) {
    std::vector<double> row{static_cast<double>(i) * result.rate_step};
    for (const auto& series : result.homogeneous_series)
      row.push_back(series[i]);
    w.add_row(row);
  }
  w.write_file(directory / "fig1_profiles.csv");
}

void export_fig2(const Fig2Result& result,
                 const std::filesystem::path& directory) {
  ensure_directory(directory);
  CsvWriter w;
  w.set_header({"name", "step3_threshold", "step4_threshold"});
  for (std::size_t i = 0; i < result.names.size(); ++i)
    w.add_row(std::vector<std::string>{result.names[i],
                                       std::to_string(result.step3[i]),
                                       std::to_string(result.step4[i])});
  w.write_file(directory / "fig2_thresholds.csv");
}

void export_fig3(const Fig3Result& result,
                 const std::filesystem::path& directory) {
  ensure_directory(directory);
  CsvWriter w;
  w.set_header({"name", "rate", "power"});
  for (const Fig3Series& series : result.series)
    for (std::size_t i = 0; i < series.rates.size(); ++i)
      w.add_row(std::vector<std::string>{series.name,
                                         std::to_string(series.rates[i]),
                                         std::to_string(series.powers[i])});
  w.write_file(directory / "fig3_profiles.csv");
}

void export_fig4(const Fig4Result& result,
                 const std::filesystem::path& directory) {
  ensure_directory(directory);
  CsvWriter w;
  w.set_header({"rate", "bml", "big_only", "bml_linear"});
  for (std::size_t i = 0; i < result.rates.size(); ++i)
    w.add_row(std::vector<double>{result.rates[i], result.bml[i],
                                  result.big_only[i], result.linear[i]});
  w.write_file(directory / "fig4_curves.csv");
}

void export_fig5(const Fig5Result& result,
                 const std::filesystem::path& directory) {
  ensure_directory(directory);
  CsvWriter w;
  w.set_header({"day", "lower_bound_j", "bml_j", "per_day_bound_j",
                "global_bound_j", "bml_overhead_pct"});
  for (std::size_t d = 0; d < result.lower_bound.size(); ++d) {
    w.add_row(std::vector<double>{
        static_cast<double>(d), result.lower_bound[d], result.bml[d],
        result.per_day_bound[d], result.global_bound[d],
        d < result.bml_overhead_pct.size() ? result.bml_overhead_pct[d]
                                           : 0.0});
  }
  w.write_file(directory / "fig5_per_day.csv");
}

int export_all(const std::filesystem::path& directory) {
  export_table1(run_table1(), directory);
  export_fig1(run_fig1(), directory);
  export_fig2(run_fig2(), directory);
  export_fig3(run_fig3(), directory);
  export_fig4(run_fig4(), directory);
  export_fig5(run_fig5(), directory);
  return 6;
}

}  // namespace bml
