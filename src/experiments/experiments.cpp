#include "experiments/experiments.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/crossing.hpp"
#include "predict/predictor.hpp"
#include "profiling/profiler.hpp"
#include "sched/baselines.hpp"
#include "sched/bml_scheduler.hpp"
#include "sched/lower_bound.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace bml {

// ---------------------------------------------------------------- Table I

double ProfiledArch::worst_relative_error() const {
  const double perf =
      std::abs(measured.max_perf() - truth.max_perf()) / truth.max_perf();
  const double idle =
      std::abs(measured.idle_power() - truth.idle_power()) /
      truth.idle_power();
  const double peak =
      std::abs(measured.max_power() - truth.max_power()) / truth.max_power();
  return std::max({perf, idle, peak});
}

Table1Result run_table1(std::uint64_t seed) {
  Table1Result result;
  const Catalog truth = real_catalog();
  Profiler profiler;
  std::uint64_t machine_seed = seed;
  for (const ArchitectureProfile& arch : truth) {
    SimulatedMachine machine(MachineSpec(arch), machine_seed++);
    result.rows.push_back(ProfiledArch{profiler.profile(machine), arch});
  }
  return result;
}

// ----------------------------------------------------------------- Fig. 1

Fig1Result run_fig1() {
  Fig1Result result;
  result.input = illustrative_catalog();
  FilterResult filtered = filter_candidates(result.input);
  result.kept = std::move(filtered.candidates);
  result.removed = std::move(filtered.removed);
  for (const ArchitectureProfile& arch : result.input) {
    std::vector<Watts> series;
    for (ReqRate r = 0.0; r <= result.max_rate; r += result.rate_step)
      series.push_back(homogeneous_cost(arch, r));
    result.homogeneous_series.push_back(std::move(series));
  }
  return result;
}

// ----------------------------------------------------------------- Fig. 2

Fig2Result run_fig2() {
  Fig2Result result{BmlDesign::build(illustrative_catalog()), {}, {}, {}};
  const BmlDesign& design = result.design;
  for (std::size_t i = 0; i < design.candidates().size(); ++i) {
    result.names.push_back(design.candidates()[i].name());
    result.step3.push_back(design.step3_thresholds()[i]);
    result.step4.push_back(design.thresholds()[i]);
  }
  return result;
}

// ----------------------------------------------------------------- Fig. 3

Fig3Result run_fig3(int points) {
  if (points < 2) throw std::invalid_argument("run_fig3: points must be >= 2");
  Fig3Result result;
  for (const ArchitectureProfile& arch : real_catalog()) {
    Fig3Series series;
    series.name = arch.name();
    for (int i = 0; i < points; ++i) {
      const ReqRate r =
          arch.max_perf() * static_cast<double>(i) / (points - 1);
      series.rates.push_back(r);
      series.powers.push_back(arch.power_at(r));
    }
    result.series.push_back(std::move(series));
  }
  return result;
}

// ----------------------------------------------------------------- Fig. 4

Fig4Result run_fig4(ReqRate rate_step) {
  if (rate_step <= 0.0)
    throw std::invalid_argument("run_fig4: rate_step must be > 0");
  Fig4Result result{BmlDesign::build(real_catalog()), {}, {}, {}, {}};
  const BmlDesign& design = result.design;
  const ArchitectureProfile& big = design.big();
  const BmlLinearReference linear = design.linear_reference();
  for (ReqRate r = 0.0; r <= big.max_perf(); r += rate_step) {
    result.rates.push_back(r);
    result.bml.push_back(design.ideal_power(r));
    result.big_only.push_back(big.power_at(r));
    result.linear.push_back(linear.power(r));
  }
  return result;
}

// ----------------------------------------------------------------- Fig. 5

double Fig5Result::mean_overhead_pct() const {
  return bml_overhead_pct.empty() ? 0.0 : mean_of(bml_overhead_pct);
}

double Fig5Result::min_overhead_pct() const {
  return bml_overhead_pct.empty()
             ? 0.0
             : *std::min_element(bml_overhead_pct.begin(),
                                 bml_overhead_pct.end());
}

double Fig5Result::max_overhead_pct() const {
  return bml_overhead_pct.empty()
             ? 0.0
             : *std::max_element(bml_overhead_pct.begin(),
                                 bml_overhead_pct.end());
}

Fig5Result run_fig5(const Fig5Options& options) {
  const LoadTrace trace = worldcup_like_trace(options.trace);

  BmlDesignOptions design_options;
  design_options.max_rate = std::max(trace.peak(), 1.0);
  auto design = std::make_shared<BmlDesign>(
      BmlDesign::build(real_catalog(), design_options));

  Fig5Result result;

  const Simulator simulator(design->candidates());

  // The four scenarios are independent; run them fork-join in parallel.
  parallel_invoke({
      // LowerBound Theoretical: ideal combination every second, no
      // On/Off cost.
      [&] { result.lower_bound = theoretical_lower_bound_per_day(*design,
                                                                 trace); },
      // Big-Medium-Little: the pro-active scheduler, paper's window.
      [&] {
        BmlScheduler scheduler(design,
                               std::make_shared<OracleMaxPredictor>());
        result.bml_sim = simulator.run(scheduler, trace);
        result.bml = result.bml_sim.per_day_total();
      },
      // UpperBound PerDay: homogeneous Big fleet resized at midnight.
      [&] {
        PerDayScheduler scheduler(design->big(), 0);
        result.per_day_sim = simulator.run(scheduler, trace);
        result.per_day_bound = result.per_day_sim.per_day_total();
      },
      // UpperBound Global: constant fleet for the global peak, always on.
      [&] {
        StaticMaxScheduler scheduler(design->big(), 0);
        result.global_sim = simulator.run(scheduler, trace);
        result.global_bound = result.global_sim.per_day_total();
      },
  });

  const std::size_t days =
      std::min({result.lower_bound.size(), result.bml.size(),
                result.per_day_bound.size(), result.global_bound.size()});
  for (std::size_t d = options.skip_days; d < days; ++d)
    result.bml_overhead_pct.push_back(
        percent_over(result.bml[d], result.lower_bound[d]));
  return result;
}

}  // namespace bml
