#include "experiments/experiments.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/crossing.hpp"
#include "predict/predictor.hpp"
#include "profiling/profiler.hpp"
#include "sched/baselines.hpp"
#include "sched/bml_scheduler.hpp"
#include "sched/lower_bound.hpp"
#include "scenario/sweep.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace bml {

// ---------------------------------------------------------------- Table I

double ProfiledArch::worst_relative_error() const {
  const double perf =
      std::abs(measured.max_perf() - truth.max_perf()) / truth.max_perf();
  const double idle =
      std::abs(measured.idle_power() - truth.idle_power()) /
      truth.idle_power();
  const double peak =
      std::abs(measured.max_power() - truth.max_power()) / truth.max_power();
  return std::max({perf, idle, peak});
}

Table1Result run_table1(std::uint64_t seed) {
  Table1Result result;
  const Catalog truth = real_catalog();
  Profiler profiler;
  std::uint64_t machine_seed = seed;
  for (const ArchitectureProfile& arch : truth) {
    SimulatedMachine machine(MachineSpec(arch), machine_seed++);
    result.rows.push_back(ProfiledArch{profiler.profile(machine), arch});
  }
  return result;
}

// ----------------------------------------------------------------- Fig. 1

Fig1Result run_fig1() {
  Fig1Result result;
  result.input = illustrative_catalog();
  FilterResult filtered = filter_candidates(result.input);
  result.kept = std::move(filtered.candidates);
  result.removed = std::move(filtered.removed);
  for (const ArchitectureProfile& arch : result.input) {
    std::vector<Watts> series;
    for (ReqRate r = 0.0; r <= result.max_rate; r += result.rate_step)
      series.push_back(homogeneous_cost(arch, r));
    result.homogeneous_series.push_back(std::move(series));
  }
  return result;
}

// ----------------------------------------------------------------- Fig. 2

Fig2Result run_fig2() {
  Fig2Result result{BmlDesign::build(illustrative_catalog()), {}, {}, {}};
  const BmlDesign& design = result.design;
  for (std::size_t i = 0; i < design.candidates().size(); ++i) {
    result.names.push_back(design.candidates()[i].name());
    result.step3.push_back(design.step3_thresholds()[i]);
    result.step4.push_back(design.thresholds()[i]);
  }
  return result;
}

// ----------------------------------------------------------------- Fig. 3

Fig3Result run_fig3(int points) {
  if (points < 2) throw std::invalid_argument("run_fig3: points must be >= 2");
  Fig3Result result;
  for (const ArchitectureProfile& arch : real_catalog()) {
    Fig3Series series;
    series.name = arch.name();
    for (int i = 0; i < points; ++i) {
      const ReqRate r =
          arch.max_perf() * static_cast<double>(i) / (points - 1);
      series.rates.push_back(r);
      series.powers.push_back(arch.power_at(r));
    }
    result.series.push_back(std::move(series));
  }
  return result;
}

// ----------------------------------------------------------------- Fig. 4

Fig4Result run_fig4(ReqRate rate_step) {
  if (rate_step <= 0.0)
    throw std::invalid_argument("run_fig4: rate_step must be > 0");
  Fig4Result result{BmlDesign::build(real_catalog()), {}, {}, {}, {}};
  const BmlDesign& design = result.design;
  const ArchitectureProfile& big = design.big();
  const BmlLinearReference linear = design.linear_reference();
  for (ReqRate r = 0.0; r <= big.max_perf(); r += rate_step) {
    result.rates.push_back(r);
    result.bml.push_back(design.ideal_power(r));
    result.big_only.push_back(big.power_at(r));
    result.linear.push_back(linear.power(r));
  }
  return result;
}

// ----------------------------------------------------------------- Fig. 5

double Fig5Result::mean_overhead_pct() const {
  return bml_overhead_pct.empty() ? 0.0 : mean_of(bml_overhead_pct);
}

double Fig5Result::min_overhead_pct() const {
  return bml_overhead_pct.empty()
             ? 0.0
             : *std::min_element(bml_overhead_pct.begin(),
                                 bml_overhead_pct.end());
}

double Fig5Result::max_overhead_pct() const {
  return bml_overhead_pct.empty()
             ? 0.0
             : *std::max_element(bml_overhead_pct.begin(),
                                 bml_overhead_pct.end());
}

namespace {

/// Serialises every WorldCupOptions knob into scenario `trace.*`
/// parameters, so the registry's generator reproduces the trace
/// bit-exactly (17 significant digits round-trip any double).
std::map<std::string, std::string> worldcup_trace_params(
    const WorldCupOptions& o) {
  std::map<std::string, std::string> params;
  const auto num = [](double v) {
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
  };
  params["days"] = std::to_string(o.days);
  params["peak"] = num(o.peak);
  params["base_fraction"] = num(o.base_fraction);
  params["tournament_start_day"] = std::to_string(o.tournament_start_day);
  params["tournament_end_day"] = std::to_string(o.tournament_end_day);
  params["diurnal_trough"] = num(o.diurnal_trough);
  std::string hours;
  for (double h : o.match_hours) hours += (hours.empty() ? "" : ";") + num(h);
  params["match_hours"] = hours;
  params["match_boost"] = num(o.match_boost);
  params["match_duration"] = num(o.match_duration);
  params["news_burst_prob_per_day"] = num(o.news_burst_prob_per_day);
  params["news_burst_min_amplitude"] = num(o.news_burst_min_amplitude);
  params["news_burst_max_amplitude"] = num(o.news_burst_max_amplitude);
  params["news_burst_min_duration"] = num(o.news_burst_min_duration);
  params["news_burst_max_duration"] = num(o.news_burst_max_duration);
  params["news_burst_ramp"] = num(o.news_burst_ramp);
  params["micro_bursts_per_day"] = num(o.micro_bursts_per_day);
  params["micro_burst_min_amplitude"] = num(o.micro_burst_min_amplitude);
  params["micro_burst_max_amplitude"] = num(o.micro_burst_max_amplitude);
  params["micro_burst_min_duration"] = num(o.micro_burst_min_duration);
  params["micro_burst_max_duration"] = num(o.micro_burst_max_duration);
  params["noise"] = num(o.noise);
  params["poisson_arrivals"] = o.poisson_arrivals ? "true" : "false";
  params["seed"] = std::to_string(o.seed);
  return params;
}

}  // namespace

Fig5Result run_fig5(const Fig5Options& options) {
  const LoadTrace trace = worldcup_like_trace(options.trace);

  BmlDesignOptions design_options;
  design_options.max_rate = std::max(trace.peak(), 1.0);
  auto design = std::make_shared<BmlDesign>(
      BmlDesign::build(real_catalog(), design_options));

  Fig5Result result;

  // The figure's three simulated scenarios, expressed as data and executed
  // by the scenario engine: Big-Medium-Little (the pro-active scheduler,
  // paper's window), UpperBound PerDay (homogeneous Big fleet resized at
  // midnight), and UpperBound Global (constant fleet for the global peak).
  ScenarioSpec spec;
  spec.name = "fig5";
  spec.trace = "worldcup_like";
  spec.trace_params = worldcup_trace_params(options.trace);
  spec.sweeps.push_back(
      SweepAxis{"scheduler", {"bml", "per-day", "static-max"}});
  SweepOptions sweep_options;
  sweep_options.keep_results = true;
  // The lower bound needed the trace anyway; share it so the three
  // scenarios replay it instead of regenerating 87 days each.
  sweep_options.shared_trace = &trace;

  // The analytic lower bound (ideal combination every second, no On/Off
  // cost) is independent of the sweep; run them fork-join in parallel.
  SweepReport report;
  parallel_invoke({
      [&] {
        result.lower_bound =
            theoretical_lower_bound_per_day(*design, trace);
      },
      [&] { report = run_sweep(spec, sweep_options); },
  });

  result.bml_sim = std::move(report.results[0].sim);
  result.per_day_sim = std::move(report.results[1].sim);
  result.global_sim = std::move(report.results[2].sim);
  result.bml = result.bml_sim.per_day_total();
  result.per_day_bound = result.per_day_sim.per_day_total();
  result.global_bound = result.global_sim.per_day_total();

  const std::size_t days =
      std::min({result.lower_bound.size(), result.bml.size(),
                result.per_day_bound.size(), result.global_bound.size()});
  for (std::size_t d = options.skip_days; d < days; ++d)
    result.bml_overhead_pct.push_back(
        percent_over(result.bml[d], result.lower_bound[d]));
  return result;
}

// ------------------------------------------------------------- Colocation

Joules ColocationResult::isolated_total() const {
  Joules total = 0.0;
  for (const SimulationResult& r : isolated) total += r.total_energy();
  return total;
}

ColocationResult run_colocation(std::size_t days, std::uint64_t seed) {
  if (days == 0) throw std::invalid_argument("run_colocation: days == 0");
  const Catalog catalog = real_catalog();

  DiurnalOptions diurnal;
  diurnal.peak = 1500.0;
  diurnal.noise = 0.02;
  diurnal.seed = seed;
  LoadTrace frontend = diurnal_trace(diurnal, days);
  LoadTrace batch =
      constant_trace(400.0, static_cast<double>(days) * 86'400.0);

  const auto make_workloads = [&](std::shared_ptr<const BmlDesign> design) {
    std::vector<Workload> workloads;
    Workload web;
    web.name = "frontend";
    web.trace = frontend;
    web.scheduler = std::make_unique<BmlScheduler>(
        design, std::make_shared<OracleMaxPredictor>());
    workloads.push_back(std::move(web));
    Workload steady;
    steady.name = "batch";
    steady.trace = batch;
    steady.scheduler = std::make_unique<BmlScheduler>(
        design, std::make_shared<OracleMaxPredictor>());
    workloads.push_back(std::move(steady));
    return workloads;
  };

  ColocationResult result;
  {
    // Shared pool, designed for the aggregate demand.
    const ReqRate peak =
        combined_trace(std::vector<const LoadTrace*>{&frontend, &batch})
            .peak();
    auto design = std::make_shared<BmlDesign>(
        BmlDesign::build(catalog, {.max_rate = std::max(peak, 1.0)}));
    const Simulator simulator(design->candidates());
    std::vector<Workload> workloads = make_workloads(design);
    result.colocated = simulator.run(workloads);
  }
  for (const LoadTrace* trace : {&frontend, &batch}) {
    // One dedicated cluster per app, each sized for its own peak.
    auto design = std::make_shared<BmlDesign>(BmlDesign::build(
        catalog, {.max_rate = std::max(trace->peak(), 1.0)}));
    const Simulator simulator(design->candidates());
    BmlScheduler scheduler(design, std::make_shared<OracleMaxPredictor>());
    result.isolated.push_back(simulator.run(scheduler, *trace));
  }
  return result;
}

SloRackStrikeResult run_slo_rackstrikes(std::size_t days,
                                        std::uint64_t seed) {
  if (days == 0) throw std::invalid_argument("run_slo_rackstrikes: days == 0");
  const Catalog catalog = real_catalog();

  DiurnalOptions diurnal;
  diurnal.peak = 1500.0;
  diurnal.noise = 0.05;
  diurnal.seed = seed;
  LoadTrace frontend = diurnal_trace(diurnal, days);
  LoadTrace batch =
      constant_trace(500.0, static_cast<double>(days) * 86'400.0);

  const ReqRate peak =
      combined_trace(std::vector<const LoadTrace*>{&frontend, &batch}).peak();
  auto design = std::make_shared<BmlDesign>(
      BmlDesign::build(catalog, {.max_rate = std::max(peak, 1.0)}));

  // Both runs replay the identical strike timeline: the fault streams are
  // functions of the seed alone, never of cluster state, so the aware run
  // differs only in how the coordinator responds.
  SimulatorOptions options;
  options.faults.groups = 2;
  options.faults.group_mtbf = 3.0 * 3600.0;
  options.faults.group_mttr = 1800.0;
  options.faults.crews = 1;  // one crew: repairs queue, outages stretch
  options.faults.seed = seed;
  options.slo_window = 7200.0;

  SloRackStrikeResult result;
  result.target = 0.999;

  const auto run_with = [&](double target) {
    std::vector<Workload> workloads;
    Workload web;
    web.name = "frontend";
    web.trace = frontend;
    web.scheduler = std::make_unique<BmlScheduler>(
        design, std::make_shared<OracleMaxPredictor>());
    web.fault_domain = "rack-pool";
    web.slo_availability = target;
    web.slo_spare = 0.5;
    workloads.push_back(std::move(web));
    Workload steady;
    steady.name = "batch";
    steady.trace = batch;
    steady.scheduler = std::make_unique<BmlScheduler>(
        design, std::make_shared<OracleMaxPredictor>());
    steady.fault_domain = "rack-pool";
    workloads.push_back(std::move(steady));
    const Simulator simulator(design->candidates(), options);
    return simulator.run(workloads);
  };

  result.aware = run_with(result.target);
  result.baseline = run_with(0.0);
  return result;
}

DegradedPriorityResult run_degraded_priority(std::size_t days,
                                             std::uint64_t seed) {
  if (days == 0)
    throw std::invalid_argument("run_degraded_priority: days == 0");
  const Catalog catalog = real_catalog();

  DiurnalOptions diurnal;
  diurnal.peak = 1500.0;
  diurnal.noise = 0.05;
  diurnal.seed = seed;
  LoadTrace frontend = diurnal_trace(diurnal, days);
  LoadTrace batch =
      constant_trace(500.0, static_cast<double>(days) * 86'400.0);

  const ReqRate peak =
      combined_trace(std::vector<const LoadTrace*>{&frontend, &batch}).peak();
  auto design = std::make_shared<BmlDesign>(
      BmlDesign::build(catalog, {.max_rate = std::max(peak, 1.0)}));

  DegradedPriorityResult result;
  result.overload_factor = 0.5;
  result.penalty = 0.5;

  // Both runs replay the identical strike timeline (the fault streams are
  // functions of the seed alone); `graceful` toggles the whole degradation
  // stack at once — spill-over absorption and the priority ranking.
  const auto run_with = [&](bool graceful) {
    SimulatorOptions options;
    options.faults.groups = 2;
    options.faults.group_mtbf = 3.0 * 3600.0;
    options.faults.group_mttr = 1800.0;
    options.faults.crews = 1;  // one crew: repairs queue, outages stretch
    options.faults.seed = seed;
    if (graceful) {
      options.degrade.overload_factor = result.overload_factor;
      options.degrade.penalty = result.penalty;
    }
    std::vector<Workload> workloads;
    Workload web;
    web.name = "frontend";
    web.trace = frontend;
    web.scheduler = std::make_unique<BmlScheduler>(
        design, std::make_shared<OracleMaxPredictor>());
    web.fault_domain = "rack-pool";
    web.priority = graceful ? 2 : 0;
    workloads.push_back(std::move(web));
    Workload steady;
    steady.name = "batch";
    steady.trace = batch;
    steady.scheduler = std::make_unique<BmlScheduler>(
        design, std::make_shared<OracleMaxPredictor>());
    steady.fault_domain = "rack-pool";
    workloads.push_back(std::move(steady));
    const Simulator simulator(design->candidates(), options);
    return simulator.run(workloads);
  };

  result.aware = run_with(true);
  result.baseline = run_with(false);
  return result;
}

TenantChurnResult run_tenant_churn(std::size_t days, std::uint64_t seed) {
  if (days == 0) throw std::invalid_argument("run_tenant_churn: days == 0");
  const Catalog catalog = real_catalog();

  DiurnalOptions diurnal;
  diurnal.peak = 1500.0;
  diurnal.noise = 0.05;
  diurnal.seed = seed;
  LoadTrace frontend = diurnal_trace(diurnal, days);
  const auto horizon = static_cast<TimePoint>(days) * 86'400;
  LoadTrace batch = constant_trace(500.0, static_cast<double>(horizon));

  // The pool is designed for the combined peak either way — the question
  // is what the control plane does with the visitor's capacity while the
  // visitor is not resident.
  const ReqRate peak =
      combined_trace(std::vector<const LoadTrace*>{&frontend, &batch}).peak();
  auto design = std::make_shared<BmlDesign>(
      BmlDesign::build(catalog, {.max_rate = std::max(peak, 1.0)}));

  TenantChurnResult result;
  result.arrive = horizon / 4;
  result.depart = 3 * horizon / 4;

  const auto run_with = [&](bool aware) {
    SimulatorOptions options;
    options.coordinator = CoordinatorMode::kPartitioned;
    options.coordinator_budget = design->max_rate();
    std::vector<Workload> workloads;
    Workload web;
    web.name = "frontend";
    web.trace = frontend;
    web.scheduler = std::make_unique<BmlScheduler>(
        design, std::make_shared<OracleMaxPredictor>());
    // Shares mirror the demand ratio (1500 peak vs 500 steady), so the
    // partitioned budget never chokes the frontend while the visitor is
    // resident; what the aware run changes is only the visitor's window.
    web.share = 3.0;
    workloads.push_back(std::move(web));
    Workload visitor;
    visitor.name = "visitor";
    visitor.trace = batch;
    visitor.scheduler = std::make_unique<BmlScheduler>(
        design, std::make_shared<OracleMaxPredictor>());
    visitor.share = 1.0;
    if (aware) {
      visitor.arrive = result.arrive;
      visitor.depart = result.depart;
    }
    workloads.push_back(std::move(visitor));
    const Simulator simulator(design->candidates(), options);
    return simulator.run(workloads);
  };

  result.aware = run_with(true);
  result.baseline = run_with(false);
  return result;
}

}  // namespace bml
