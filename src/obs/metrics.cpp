#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace bml {

namespace {

/// Deterministic numeric rendering (12 significant digits, the same rule
/// the sweep CSV uses) so registry text is stable across platforms and
/// thread counts.
std::string render_num(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram: no buckets");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (!(bounds_[i] > bounds_[i - 1]))
      throw std::invalid_argument(
          "Histogram: bounds must be strictly increasing");
  counts_.assign(bounds_.size() + 1, 0);
}

Histogram Histogram::exponential(double first, double factor,
                                 std::size_t count) {
  if (!(first > 0.0) || !(factor > 1.0) || count == 0)
    throw std::invalid_argument(
        "Histogram::exponential: need first > 0, factor > 1, count >= 1");
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = first;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return Histogram(std::move(bounds));
}

void Histogram::observe(double value) {
  if (bounds_.empty()) return;  // unconfigured histograms drop observations
  std::size_t bucket = bounds_.size();  // overflow unless a bound covers it
  // Linear scan: the ladders used here have ~20 buckets and observations
  // land in the low buckets; a binary search would not pay for itself.
  for (std::size_t i = 0; i < bounds_.size(); ++i)
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  ++counts_[bucket];
  ++total_;
  sum_ += value;
}

void Histogram::merge(const Histogram& other) {
  if (!other.configured()) return;
  if (!configured()) {
    *this = other;
    return;
  }
  if (bounds_ != other.bounds_)
    throw std::invalid_argument("Histogram::merge: bucket bounds differ");
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  total_ += other.total_;
  sum_ += other.sum_;
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  os << "count=" << total_ << " mean=" << render_num(mean());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    os << ' ';
    if (i < bounds_.size())
      os << "le" << render_num(bounds_[i]);
    else
      os << "inf";
    os << ':' << counts_[i];
  }
  return os.str();
}

void MetricsRegistry::add_counter(const std::string& name,
                                  std::uint64_t delta) {
  counters_[name] += delta;
}

void MetricsRegistry::max_gauge(const std::string& name, double value) {
  auto [it, inserted] = gauges_.try_emplace(name, value);
  if (!inserted && value > it->second) it->second = value;
}

void MetricsRegistry::merge_histogram(const std::string& name,
                                      const Histogram& histogram) {
  histograms_[name].merge(histogram);
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.gauges_) max_gauge(name, value);
  for (const auto& [name, histogram] : other.histograms_)
    histograms_[name].merge(histogram);
}

std::string MetricsRegistry::to_text() const {
  // One pre-sorted pass per kind; names are disjoint by convention
  // (counters end in plain nouns, histograms carry their own rendering).
  std::ostringstream os;
  for (const auto& [name, value] : counters_)
    os << name << ' ' << value << '\n';
  for (const auto& [name, value] : gauges_)
    os << name << ' ' << render_num(value) << '\n';
  for (const auto& [name, histogram] : histograms_)
    os << name << ' ' << histogram.to_string() << '\n';
  return os.str();
}

const char* to_string(SpanEndCause cause) {
  switch (cause) {
    case SpanEndCause::kSchedulerStable: return "scheduler-stable";
    case SpanEndCause::kTraceChange: return "trace-change";
    case SpanEndCause::kTransitionComplete: return "transition-complete";
    case SpanEndCause::kFault: return "fault";
    case SpanEndCause::kCrewCompletion: return "crew-completion";
    case SpanEndCause::kSloCrossing: return "slo-crossing";
    case SpanEndCause::kOverloadCrossing: return "overload-crossing";
    case SpanEndCause::kChurn: return "churn";
    case SpanEndCause::kDayBoundary: return "day-boundary";
    case SpanEndCause::kTraceEnd: return "trace-end";
  }
  throw std::logic_error("to_string(SpanEndCause): invalid cause");
}

void SimMetrics::enable() {
  enabled = true;
  // 1 s .. ~1.5 days in doubling buckets: every span the simulator can
  // produce lands in a real bucket (spans are clamped at day boundaries,
  // so the ladder tops out just above kSecondsPerDay).
  if (!span_seconds.configured())
    span_seconds = Histogram::exponential(1.0, 2.0, 18);
}

void SimMetrics::merge(const SimMetrics& other) {
  if (!other.enabled) return;
  enabled = true;
  spans += other.spans;
  ticks += other.ticks;
  for (std::size_t i = 0; i < span_end_causes.size(); ++i)
    span_end_causes[i] += other.span_end_causes[i];
  scheduler_consults += other.scheduler_consults;
  decisions_applied += other.decisions_applied;
  merge_frontier_advances += other.merge_frontier_advances;
  merge_apps_max = std::max(merge_apps_max, other.merge_apps_max);
  preemptions += other.preemptions;
  apps_active_max = std::max(apps_active_max, other.apps_active_max);
  span_seconds.merge(other.span_seconds);
}

void SimMetrics::export_to(MetricsRegistry& out) const {
  if (!enabled) return;
  out.add_counter("sim.spans", spans);
  out.add_counter("sim.ticks", ticks);
  for (std::size_t i = 0; i < span_end_causes.size(); ++i)
    out.add_counter(std::string("sim.span_end.") +
                        to_string(static_cast<SpanEndCause>(i)),
                    span_end_causes[i]);
  out.add_counter("sim.scheduler_consults", scheduler_consults);
  out.add_counter("sim.decisions_applied", decisions_applied);
  out.add_counter("sim.merge.frontier_advances", merge_frontier_advances);
  out.max_gauge("sim.merge.apps_max", static_cast<double>(merge_apps_max));
  out.add_counter("sim.preemptions", preemptions);
  out.max_gauge("sim.apps_active", static_cast<double>(apps_active_max));
  if (span_seconds.configured())
    out.merge_histogram("sim.span_seconds", span_seconds);
}

}  // namespace bml
