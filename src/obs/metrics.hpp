// Simulation self-metrics: the registry and the simulator's own
// instrumentation.
//
// The fleet-scale roadmap item needs to know *why* the event-driven fast
// path does the work it does — which bound ends each span, how long spans
// get, how much of a sweep's wall-clock went into shared builds versus
// replays. This header provides:
//
//   * Histogram — fixed upper-bound buckets (plus an implicit overflow
//     bucket), integer counts, exact merges;
//   * MetricsRegistry — named counters / gauges / histograms with a
//     deterministic text rendering (names sorted) and a deterministic
//     merge, so per-sweep-worker shards folded in grid order produce
//     byte-identical output for every --threads value;
//   * SpanEndCause + SimMetrics — the simulator's own counters: one
//     SimMetrics per run, incremented through a nullable pointer so a
//     disabled run costs one branch per span and allocates nothing.
//
// Everything here is plain data: no atomics, no locks. Parallel sweeps
// give every scenario its own SimMetrics shard and merge the shards
// sequentially in grid index order (scenario/sweep.hpp), which is both
// race-free and thread-count-independent.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bml {

class MetricsRegistry;

/// Fixed-bucket histogram: bucket i counts observations with
/// value <= upper_bounds[i] (first matching bucket), and one implicit
/// overflow bucket counts everything beyond the last bound. Bounds are
/// immutable after construction; merges require identical bounds.
class Histogram {
 public:
  Histogram() = default;
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  /// Geometric bucket ladder: first, first*factor, ... (`count` bounds).
  [[nodiscard]] static Histogram exponential(double first, double factor,
                                             std::size_t count);

  /// True once constructed with bounds (a default-constructed histogram
  /// drops observations — SimMetrics uses this so disabled runs allocate
  /// nothing).
  [[nodiscard]] bool configured() const { return !bounds_.empty(); }

  void observe(double value);

  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return bounds_;
  }
  /// Per-bucket counts; size upper_bounds().size() + 1 (last = overflow).
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }
  [[nodiscard]] std::uint64_t total_count() const { return total_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
  }

  /// Adds `other`'s counts bucket-wise. Throws std::invalid_argument on a
  /// bound mismatch; merging an unconfigured histogram is a no-op, and
  /// merging into an unconfigured one adopts the other's bounds.
  void merge(const Histogram& other);

  /// One-line rendering: count, mean, and the non-empty buckets as
  /// "<=bound:count" pairs (deterministic).
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

/// Named metrics with deterministic merge and rendering. Counters add,
/// gauges keep the maximum, histograms merge bucket-wise; to_text() walks
/// the (ordered) maps, so two registries built from the same shards in the
/// same order render byte-identically regardless of how many threads
/// produced the shards.
class MetricsRegistry {
 public:
  void add_counter(const std::string& name, std::uint64_t delta);
  void max_gauge(const std::string& name, double value);
  void merge_histogram(const std::string& name, const Histogram& histogram);

  /// Current counter value; 0 when the name was never added.
  [[nodiscard]] std::uint64_t counter(const std::string& name) const;
  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Folds another registry in (counters add, gauges max, histograms
  /// merge).
  void merge(const MetricsRegistry& other);

  /// Deterministic "name value" lines, sorted by name; histograms render
  /// through Histogram::to_string.
  [[nodiscard]] std::string to_text() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Why an event-driven span ended — the binding bound among the fast
/// path's candidates (sim/simulator.cpp step 2). One counter per cause
/// answers "what limits batching" directly: a scheduler-stable-dominated
/// run is decision-bound, a trace-change-dominated one is
/// threshold-crossing-bound, a fault/crew-dominated one is
/// availability-bound.
enum class SpanEndCause {
  /// Some scheduler's decision may change (predictor horizon, decision
  /// window, hysteresis hold, ...).
  kSchedulerStable,
  /// The decision bound coincides with a trace run boundary — the load
  /// crossed a decision threshold.
  kTraceChange,
  /// A machine boot/shutdown completes (or a reconfiguration drains).
  kTransitionComplete,
  /// A failure strike (machine or rack) is due.
  kFault,
  /// A repair completion is due (the crew frees up).
  kCrewCompletion,
  /// An availability-SLO trailing window crosses an error budget.
  kSloCrossing,
  /// The offered load crossed the On fleet's rated capacity while
  /// degraded-mode serving is on (overload entry or exit).
  kOverloadCrossing,
  /// A tenant arrival or departure is due (Workload::arrive / depart):
  /// the active-app set changes at the span end, so attribution
  /// integrands never straddle a churn event.
  kChurn,
  /// The span was clamped at a day boundary (per-day energy buckets).
  kDayBoundary,
  /// The replay ran out of trace.
  kTraceEnd,
};
inline constexpr std::size_t kSpanEndCauseCount = 10;

[[nodiscard]] const char* to_string(SpanEndCause cause);

/// One run's self-instrumentation. Disabled by default: enable() allocates
/// the histograms; the simulator increments fields through a pointer that
/// is null when metrics are off, so the fast path pays one branch per span
/// and the numbers never feed back into the simulation. merge() is exact
/// (integer counters), so folding shards in a fixed order is
/// thread-count-independent.
struct SimMetrics {
  bool enabled = false;

  /// Event-driven spans executed / per-second reference ticks executed
  /// (one of the two is 0 depending on the execution strategy).
  std::uint64_t spans = 0;
  std::uint64_t ticks = 0;
  /// Per-cause span-end counts; sums to `spans` on the event-driven path.
  std::array<std::uint64_t, kSpanEndCauseCount> span_end_causes{};
  /// Scheduler decide() consultations (one per workload per idle decision
  /// point).
  std::uint64_t scheduler_consults = 0;
  /// Merged decisions that changed the cluster target (== reconfigurations
  /// started).
  std::uint64_t decisions_applied = 0;
  /// Fused k-way merge instrumentation (multi-app event-driven path):
  /// frontier cursor advances (RLE runs consumed across all apps, seeding
  /// included) and the largest app count any merge ran with.
  std::uint64_t merge_frontier_advances = 0;
  std::uint64_t merge_apps_max = 0;
  /// Machines preempted from low-priority apps to backfill high-priority
  /// ones after strikes (units, summed over all preemption instants).
  std::uint64_t preemptions = 0;
  /// Largest number of simultaneously active tenants the run saw
  /// (tenant lifecycle; equals the app count for fixed-tenant runs).
  /// Merged as a maximum and exported as the sim.apps_active gauge.
  std::uint64_t apps_active_max = 0;
  /// Span lengths in seconds (event-driven path only).
  Histogram span_seconds;

  /// Allocates the histograms and marks the struct live.
  void enable();

  /// Exact bucket/counter merge (both sides may be disabled; a disabled
  /// side contributes nothing).
  void merge(const SimMetrics& other);

  /// Exports into `out` under "sim." names (sim.spans, sim.span_end.*,
  /// sim.span_seconds, ...). A disabled SimMetrics exports nothing.
  void export_to(MetricsRegistry& out) const;
};

}  // namespace bml
