#include "obs/trace_export.hpp"

#include <cstddef>
#include <cstdio>
#include <sstream>
#include <string>

#include "obs/metrics.hpp"

namespace bml {

namespace {

/// Simulated seconds -> trace microseconds (the viewer's native unit).
constexpr std::int64_t kMicrosPerSecond = 1'000'000;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Deterministic value rendering (12 significant digits, matching the
/// sweep CSV and the metrics registry).
std::string render_num(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

/// Emits one JSON trace event per line; tracks the leading comma so the
/// array stays valid whatever subset of emitters fires.
class EventWriter {
 public:
  explicit EventWriter(std::ostringstream& os) : os_(os) {}

  std::ostringstream& next() {
    if (first_)
      first_ = false;
    else
      os_ << ",\n";
    return os_;
  }

 private:
  std::ostringstream& os_;
  bool first_ = true;
};

void emit_counter(EventWriter& w, const char* name, std::int64_t ts,
                  const std::string& args) {
  w.next() << "{\"name\":\"" << name << "\",\"ph\":\"C\",\"ts\":" << ts
           << ",\"pid\":1,\"args\":{" << args << "}}";
}

std::string per_arch_args(const std::vector<std::string>& arch_names,
                          const std::vector<int>& counts) {
  std::string args;
  for (std::size_t a = 0; a < arch_names.size(); ++a) {
    if (a > 0) args += ',';
    args += '"' + json_escape(arch_names[a]) + "\":";
    args += std::to_string(a < counts.size() ? counts[a] : 0);
  }
  return args;
}

void emit_instant(EventWriter& w, const char* name, std::int64_t ts,
                  const std::string& detail) {
  w.next() << "{\"name\":\"" << name << "\",\"ph\":\"i\",\"ts\":" << ts
           << ",\"pid\":1,\"tid\":1,\"s\":\"g\",\"args\":{\"detail\":\""
           << json_escape(detail) << "\"}}";
}

}  // namespace

std::string chrome_trace_json(const TraceRecording& recording) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n";
  EventWriter w(os);

  // Metadata names the process and the event thread in the viewer.
  w.next() << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
              "\"args\":{\"name\":\"bmlsim\"}}";
  w.next() << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
              "\"args\":{\"name\":\"events\"}}";

  // Counter tracks, one multi-series counter per fleet state plus load
  // and spares. Samples are already in time order.
  for (const TimelineSample& s : recording.samples) {
    const std::int64_t ts = s.time * kMicrosPerSecond;
    emit_counter(w, "machines on", ts,
                 per_arch_args(recording.arch_names, s.on));
    emit_counter(w, "machines booting", ts,
                 per_arch_args(recording.arch_names, s.booting));
    emit_counter(w, "machines shutting down", ts,
                 per_arch_args(recording.arch_names, s.shutting_down));
    emit_counter(w, "machines failed", ts,
                 per_arch_args(recording.arch_names, s.failed));
    emit_counter(w, "load", ts,
                 "\"offered\":" + render_num(s.offered) +
                     ",\"served\":" + render_num(s.served));
    emit_counter(w, "slo spares", ts,
                 "\"machines\":" + std::to_string(s.spare_machines));
  }

  // Events. Reconfigurations pair start -> completion into duration
  // slices; everything else is an instant. Starts and completions
  // strictly alternate in a full stream, but the log is a bounded ring —
  // an orphaned completion (start fell off the ring) degrades to an
  // instant, as does a start the run ended before completing.
  bool reconfig_open = false;
  std::int64_t reconfig_ts = 0;
  std::string reconfig_target;
  for (const SimEvent& e : recording.events) {
    const std::int64_t ts = e.time * kMicrosPerSecond;
    switch (e.kind) {
      case EventKind::kReconfigurationStart:
        reconfig_open = true;
        reconfig_ts = ts;
        reconfig_target = e.detail;
        break;
      case EventKind::kReconfigurationComplete:
        if (reconfig_open) {
          // The completion detail is "<n> s", inclusive of the start
          // second; the slice spans the same interval.
          const std::int64_t dur = ts - reconfig_ts + kMicrosPerSecond;
          w.next() << "{\"name\":\"reconfiguration\",\"ph\":\"X\",\"ts\":"
                   << reconfig_ts << ",\"dur\":" << dur
                   << ",\"pid\":1,\"tid\":1,\"args\":{\"target\":\""
                   << json_escape(reconfig_target) << "\"}}";
          reconfig_open = false;
        } else {
          emit_instant(w, to_string(e.kind), ts, e.detail);
        }
        break;
      default:
        emit_instant(w, to_string(e.kind), ts, e.detail);
        break;
    }
  }
  if (reconfig_open)
    emit_instant(w, to_string(EventKind::kReconfigurationStart), reconfig_ts,
                 reconfig_target);

  os << "\n]}\n";
  return os.str();
}

void export_event_counts(const EventLog& log, MetricsRegistry& out) {
  constexpr EventKind kKinds[] = {
      EventKind::kReconfigurationStart,  EventKind::kReconfigurationComplete,
      EventKind::kBootComplete,          EventKind::kShutdownComplete,
      EventKind::kQosViolation,          EventKind::kMachineFailure,
      EventKind::kMachineRepair,         EventKind::kGroupStrike,
      EventKind::kSpareProvision,        EventKind::kSpareRelease,
  };
  for (const EventKind kind : kKinds) {
    const std::size_t n = log.count(kind);
    if (n > 0)
      out.add_counter(std::string("events.") + to_string(kind), n);
  }
  out.add_counter("events.total", log.total());
}

}  // namespace bml
