// Timeline export: a run rendered as Chrome trace-event JSON.
//
// The paper argues with time-series figures — machines-on per arch,
// power, served load over a WC98 day. TraceRecording captures exactly
// that from a run (sampled counter tracks plus the structured event
// stream), and chrome_trace_json() renders it in the Chrome trace-event
// format, so `bmlsim run --trace-out run.json` produces a file that
// loads directly in Perfetto (ui.perfetto.dev) or chrome://tracing:
//
//   * counter tracks ("C" events): machines per state per architecture,
//     offered vs served load, provisioned SLO spare machines;
//   * duration slices ("X" events): each reconfiguration from its start
//     to its completion;
//   * instant events ("i"): machine failures/repairs, rack strikes,
//     QoS violations, spare provision/release.
//
// Simulated seconds map to trace microseconds (1 s -> 1e6 "us"), so the
// viewer's time axis reads directly in simulated time. The rendering is
// byte-deterministic: fixed field order, integer timestamps, fixed-
// precision values — the golden test in tests/test_obs.cpp pins it.
//
// Recording rides the per-second reference path (SimulatorOptions::
// record_timeline forces it, exactly like record_events), so results
// obey the usual fast-path equivalence contract rather than being
// byte-identical to an event-driven run of the same scenario.
#pragma once

#include <string>
#include <vector>

#include "sim/event_log.hpp"
#include "util/units.hpp"

namespace bml {

class MetricsRegistry;

/// One sampled instant of the fleet + load state. The per-arch vectors
/// are parallel to TraceRecording::arch_names.
struct TimelineSample {
  TimePoint time = 0;
  std::vector<int> on;
  std::vector<int> booting;
  std::vector<int> shutting_down;
  std::vector<int> failed;
  ReqRate offered = 0.0;
  ReqRate served = 0.0;
  /// Machines currently provisioned as SLO spares (all apps).
  int spare_machines = 0;
};

/// A run's timeline: sampled counters plus the full event stream. Filled
/// by the simulator when SimulatorOptions::record_timeline is set.
struct TraceRecording {
  bool enabled = false;
  /// Seconds between counter samples.
  TimePoint sample_every = 60;
  std::vector<std::string> arch_names;
  std::vector<TimelineSample> samples;
  /// The run's structured events, oldest first (the EventLog ring's
  /// retained window; size the log to the run when completeness matters).
  std::vector<SimEvent> events;
};

/// Renders `recording` as Chrome trace-event JSON (Perfetto /
/// chrome://tracing compatible). Deterministic byte-for-byte for a given
/// recording.
[[nodiscard]] std::string chrome_trace_json(const TraceRecording& recording);

/// Exports an event log's monotone per-kind counters into `out` as
/// "events.<kind>" counters plus "events.total".
void export_event_counts(const EventLog& log, MetricsRegistry& out);

}  // namespace bml
