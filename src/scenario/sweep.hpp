// The scenario engine's execution layer: run one ScenarioSpec, or expand
// its `sweep` axes into a grid and run the whole list in parallel.
//
// Every scenario is self-contained — its own catalog, design, trace,
// scheduler, and cluster — so the sweep runner is embarrassingly parallel
// over parallel_for workers, and results are bit-identical regardless of
// thread count: rows land at their scenario's grid index, and each
// scenario's arithmetic never depends on its neighbours. SweepReport's CSV
// export is therefore byte-stable across --threads values (wall-clock
// timings are reported on the console only, never in the CSV).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "scenario/scenario_spec.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace bml {

/// One fully built and executed scenario.
struct ScenarioResult {
  /// The resolved spec (sweep values applied, axes cleared).
  ScenarioSpec spec;
  SimulationResult sim;
  /// Per-application slices (one per `[app]` section; a single entry for
  /// classic single-app specs).
  std::vector<WorkloadResult> apps;
  /// Duration of the replayed trace (s; the longest app trace).
  Seconds trace_duration = 0.0;
  /// Build + replay wall time of this scenario (s).
  double wall_seconds = 0.0;
};

/// Builds every component of `spec` through the registry and replays the
/// simulation. Throws std::runtime_error on unresolvable specs.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec);

/// As above, but replays `trace` instead of building the spec's trace
/// generator — for callers that already hold the workload (a loaded
/// recording, the analytic stage of an experiment) and fan a grid out over
/// it without regenerating or re-reading it per scenario. The spec's
/// `trace` fields are carried along as metadata but not consulted.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec,
                                          const LoadTrace& trace);

/// Expands the spec's sweep axes into the cartesian product of scenarios
/// (first axis outermost), naming each `base[k1=v1,k2=v2,...]`. A spec
/// without axes expands to itself. Invalid axis values surface here, before
/// anything runs.
[[nodiscard]] std::vector<ScenarioSpec> expand_sweep(const ScenarioSpec& spec);

/// Per-application metrics of one sweep row.
struct SweepAppRow {
  std::string name;
  Joules compute_energy = 0.0;
  Joules reconfiguration_energy = 0.0;
  std::int64_t qos_violation_seconds = 0;
  double served_fraction = 1.0;
  /// Runtime-fault slice of the app's fault domain (CSV columns appear
  /// only when some row in the sweep enables runtime faults).
  double availability = 1.0;
  double lost_capacity = 0.0;
  /// SLO-feedback slice (CSV columns appear only when some row configures
  /// an availability SLO): seconds this app held provisioned spares and
  /// the spares' idle-power energy (an attribution overlay inside the
  /// app's compute energy).
  std::int64_t spare_seconds = 0;
  Joules spare_energy = 0.0;
  /// Degraded-mode slice (CSV columns appear only when some row sets
  /// degrade.overload_factor > 0): seconds the cluster ran overloaded
  /// while this app offered load, and the app's share of the capacity
  /// lost to the contention penalty (req·s).
  std::int64_t overload_seconds = 0;
  double penalty_lost = 0.0;
  /// Preemption slice (CSV column appears only when some row ranks apps
  /// by priority): seconds this app had provisioned machines preempted
  /// away after a strike.
  std::int64_t preempted_seconds = 0;
  /// Tenant-lifecycle slice (CSV column appears only when some row
  /// configures churn or an app active interval): seconds this tenant was
  /// active — the window its QoS and energy integrals cover.
  std::int64_t active_seconds = 0;
};

/// Aggregate metrics of one scenario — the sweep's unit of reporting.
struct SweepRow {
  std::string scenario;
  /// Axis values of this grid point, parallel to SweepReport::axis_keys.
  std::vector<std::string> axis_values;
  std::string scheduler;
  Joules total_energy = 0.0;
  Joules compute_energy = 0.0;
  Joules reconfiguration_energy = 0.0;
  int reconfigurations = 0;
  std::int64_t qos_violation_seconds = 0;
  /// Fraction of offered requests served, in [0, 1].
  double served_fraction = 1.0;
  /// total_energy / trace duration (W).
  Watts mean_power = 0.0;
  std::size_t peak_machines = 0;
  /// Runtime-fault aggregates; `faults_enabled` records whether this
  /// row's *configuration* had a runtime fault channel (faults.mtbf > 0,
  /// or an active correlated-strike channel: faults.groups > 0 with
  /// faults.group_mtbf > 0), which — not the outcome — gates the fault
  /// CSV columns, so the CSV schema is a function of the spec alone.
  /// Zero-rate sweeps keep the classic column set byte-for-byte.
  bool faults_enabled = false;
  int machine_failures = 0;
  double availability = 1.0;
  double lost_capacity = 0.0;
  /// Correlated-strike channel (`groups_enabled` gates the group_strikes
  /// column, again on configuration, not outcome).
  bool groups_enabled = false;
  int group_strikes = 0;
  /// SLO feedback: `slo_enabled` records whether any app of this row's
  /// configuration declares slo.availability > 0, gating the spare
  /// columns; the aggregates mirror SimulationResult.
  bool slo_enabled = false;
  std::int64_t spare_seconds = 0;
  Joules spare_energy = 0.0;
  /// Degraded-mode serving: `degrade_enabled` records whether this row's
  /// configuration sets degrade.overload_factor > 0, gating the overload
  /// columns (configuration, not outcome, as with faults).
  bool degrade_enabled = false;
  std::int64_t overload_seconds = 0;
  double penalty_lost = 0.0;
  /// Priority classes: `priority_enabled` records whether this row's
  /// configuration ranks at least two apps differently, gating the
  /// preemption columns.
  bool priority_enabled = false;
  int preemptions = 0;
  /// Tenant lifecycle: `churn_enabled` records whether this row's
  /// configuration declares churn rates or a per-app active interval,
  /// gating the arrival/departure columns (configuration, not outcome).
  bool churn_enabled = false;
  int arrivals = 0;
  int departures = 0;
  /// Per-app attribution, parallel to the scenario's app list.
  std::vector<SweepAppRow> apps;
  double wall_seconds = 0.0;
  /// This scenario's simulator self-metrics shard (disabled and empty
  /// unless the spec sets obs.metrics). Shards are merged into
  /// SweepReport::metrics in grid index order after the parallel run, so
  /// the aggregate is byte-identical across --threads values.
  SimMetrics metrics;
};

/// Everything a sweep produces.
struct SweepReport {
  std::vector<std::string> axis_keys;
  std::vector<SweepRow> rows;
  /// Full per-scenario results, parallel to rows (kept only when
  /// SweepOptions::keep_results).
  std::vector<ScenarioResult> results;
  /// Whole-sweep wall time (s).
  double wall_seconds = 0.0;
  unsigned threads = 1;
  /// Build-cache accounting: how many ScenarioBuilds actually ran and how
  /// many grid points reused the shared one (see the build-sharing rules
  /// in scenario/registry.hpp).
  std::size_t builds = 0;
  std::size_t build_cache_reuses = 0;
  /// Deterministic sweep-level metrics: the per-row SimMetrics shards
  /// merged in grid index order (when obs.metrics is set) plus
  /// sweep.scenarios and sweep.build_cache.{hits,misses} counters.
  /// Wall-clock never enters the registry — to_text() is byte-identical
  /// across thread counts and machines.
  MetricsRegistry metrics;

  /// Deterministic CSV of the rows: scenario, axis columns, metrics.
  /// Multi-app sweeps (any row with >= 2 apps) append per-app column
  /// groups (app<i>_name, app<i>_compute_energy_j, ...); single-app
  /// sweeps keep the classic column set byte-for-byte. Sweeps with a
  /// runtime fault channel configured on any row (faults.mtbf > 0 or an
  /// active faults.groups channel) append machine_failures / availability
  /// / lost_capacity_req_s cluster columns, and availability /
  /// lost-capacity per-app columns inside the app groups; zero-rate fault
  /// configs keep the fault-free schema byte-for-byte. A configured
  /// correlated-strike channel appends group_strikes, and any row with an
  /// availability SLO appends spare_seconds / spare_energy_j (cluster and
  /// per-app). A configured degrade model (degrade.overload_factor > 0 on
  /// any row) appends overload_seconds / penalty_lost_req_s (cluster and
  /// per-app), and differing app priorities append preemptions (cluster)
  /// and preempted_seconds (per-app); specs without the new keys keep the
  /// previous schema byte-for-byte. A configured tenant lifecycle (churn
  /// rates or an app arrive/depart interval on any row) appends arrivals /
  /// departures (cluster) and active_seconds (per-app). Excludes
  /// wall-clock timings, so the bytes are identical across thread counts.
  [[nodiscard]] std::string to_csv() const;

  /// Console summary rendered with util/table.
  [[nodiscard]] std::string summary_table() const;

  /// Console performance report: per-scenario wall clock and fast-path
  /// metrics (spans / ticks / scheduler consults, when collected), plus
  /// the build-cache and thread totals. Wall-clock numbers are console
  /// artifacts — they never appear in to_csv() or metrics.to_text().
  [[nodiscard]] std::string perf_report() const;
};

struct SweepOptions {
  /// Worker threads; 0 = hardware concurrency.
  unsigned threads = 0;
  /// Retain every ScenarioResult (per-day series, power series, ...) in
  /// SweepReport::results.
  bool keep_results = false;
  /// Replay this trace in every scenario instead of running each one's
  /// trace generator (see the run_scenario overload). The sweep must not
  /// declare `trace`/`trace.*` axes — run_sweep throws if it does. The
  /// pointee must outlive the call.
  const LoadTrace* shared_trace = nullptr;
};

/// Expands and runs the grid; rows are ordered by grid index.
[[nodiscard]] SweepReport run_sweep(const ScenarioSpec& spec,
                                    const SweepOptions& options = {});

}  // namespace bml
