#include "scenario/registry.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "sched/baselines.hpp"
#include "sched/bml_scheduler.hpp"
#include "sched/cost_aware.hpp"
#include "trace/synthetic.hpp"
#include "trace/transforms.hpp"
#include "trace/wc98.hpp"
#include "util/csv.hpp"

namespace bml {

namespace {

/// Typed access to a component's parameter map with consumed-key tracking:
/// finish() rejects parameters the factory never looked at, so a typo like
/// `trace.peek` fails loudly instead of silently running the defaults.
class ParamReader {
 public:
  ParamReader(std::string context,
              const std::map<std::string, std::string>& params)
      : context_(std::move(context)), params_(params) {}

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) {
    const auto it = params_.find(key);
    if (it == params_.end()) return fallback;
    consumed_.push_back(key);
    return it->second;
  }

  [[nodiscard]] double get_double(const std::string& key, double fallback) {
    const auto it = params_.find(key);
    if (it == params_.end()) return fallback;
    consumed_.push_back(key);
    try {
      return parse_double(it->second);
    } catch (const std::runtime_error& e) {
      throw std::runtime_error(context_ + ": bad value for '" + key +
                               "': " + e.what());
    }
  }

  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) {
    const auto it = params_.find(key);
    if (it == params_.end()) return fallback;
    consumed_.push_back(key);
    try {
      return parse_int(it->second);
    } catch (const std::runtime_error& e) {
      throw std::runtime_error(context_ + ": bad value for '" + key +
                               "': " + e.what());
    }
  }

  /// Counts and seeds: a negative value is an error, never a size_t wrap.
  [[nodiscard]] std::uint64_t get_uint(const std::string& key,
                                       std::uint64_t fallback) {
    const std::int64_t v =
        get_int(key, static_cast<std::int64_t>(fallback));
    if (v < 0)
      throw std::runtime_error(context_ + ": bad value for '" + key +
                               "': must be >= 0");
    return static_cast<std::uint64_t>(v);
  }

  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) {
    const auto it = params_.find(key);
    if (it == params_.end()) return fallback;
    consumed_.push_back(key);
    if (it->second == "true") return true;
    if (it->second == "false") return false;
    throw std::runtime_error(context_ + ": bad value for '" + key +
                             "': expected true or false");
  }

  /// `;`-separated list of doubles, e.g. match_hours = 14.5;17.5;21.
  [[nodiscard]] std::vector<double> get_double_list(
      const std::string& key, std::vector<double> fallback) {
    const auto it = params_.find(key);
    if (it == params_.end()) return fallback;
    consumed_.push_back(key);
    std::vector<double> out;
    std::istringstream in(it->second);
    std::string item;
    while (std::getline(in, item, ';')) {
      try {
        out.push_back(parse_double(item));
      } catch (const std::runtime_error& e) {
        throw std::runtime_error(context_ + ": bad value for '" + key +
                                 "': " + e.what());
      }
    }
    return out;
  }

  /// Throws when a provided parameter was never consumed.
  void finish() const {
    for (const auto& [key, value] : params_) {
      if (std::find(consumed_.begin(), consumed_.end(), key) ==
          consumed_.end())
        throw std::runtime_error(context_ + ": unknown parameter '" + key +
                                 "'");
    }
  }

 private:
  std::string context_;
  const std::map<std::string, std::string>& params_;
  std::vector<std::string> consumed_;
};

[[noreturn]] void unknown_component(const std::string& kind,
                                    const std::string& name,
                                    const std::vector<ComponentInfo>& known) {
  std::string message = "unknown " + kind + " '" + name + "'; expected one of";
  for (std::size_t i = 0; i < known.size(); ++i)
    message += (i == 0 ? " " : ", ") + known[i].name;
  throw std::runtime_error(message);
}

}  // namespace

std::vector<ComponentInfo> catalog_components() {
  return {
      {"real", "the five Table I machines (Paravance...Raspberry)"},
      {"illustrative", "the A/B/C/D architectures of Fig. 1"},
      {"file", "catalog CSV: file=<path>"},
  };
}

std::vector<ComponentInfo> trace_components() {
  return {
      {"constant", "rate, duration"},
      {"step", "segments=rate:duration;rate:duration;..."},
      {"diurnal", "days, peak, trough_fraction, peak_hour, noise, seed"},
      {"flash_crowd",
       "base, burst_peak, duration, burst_start, ramp, hold"},
      {"worldcup_like", "days, peak, ... (every WorldCupOptions knob)"},
      {"file", "recorded trace: file=<path> (CSV or WC98), origin"},
  };
}

std::vector<ComponentInfo> predictor_components() {
  return {
      {"oracle-max", "true max over the look-ahead window (the paper's)"},
      {"last-value", "last observed rate"},
      {"moving-max", "max over trailing window; window"},
      {"ewma", "exponential average; alpha, headroom"},
      {"linear-trend", "least-squares trend; window"},
      {"seasonal", "same window one period ago; period, headroom"},
  };
}

std::vector<ComponentInfo> scheduler_components() {
  return {
      {"bml", "the paper's pro-active BML scheduler; window"},
      {"cost-aware", "weighs switch cost vs savings; window, payback_window"},
      {"reactive", "ideal combination for the current load; headroom"},
      {"hysteresis", "BML + scale-down damping; hold, window"},
      {"static-max", "UpperBound Global: constant Big fleet"},
      {"per-day", "UpperBound PerDay: Big fleet resized at midnight"},
  };
}

Catalog make_catalog(const std::string& name,
                     const std::map<std::string, std::string>& params) {
  ParamReader reader("catalog " + name, params);
  Catalog catalog;
  if (name == "real") {
    catalog = real_catalog();
  } else if (name == "illustrative") {
    catalog = illustrative_catalog();
  } else if (name == "file") {
    const std::string path = reader.get_string("file", "");
    if (path.empty())
      throw std::runtime_error("catalog file: missing 'file' parameter");
    catalog = load_catalog(path);
  } else {
    unknown_component("catalog", name, catalog_components());
  }
  reader.finish();
  return catalog;
}

LoadTrace make_trace(const std::string& name,
                     const std::map<std::string, std::string>& params,
                     std::uint64_t seed) {
  ParamReader reader("trace " + name, params);
  LoadTrace trace;
  if (name == "constant") {
    const double rate = reader.get_double("rate", 100.0);
    const double duration = reader.get_double("duration", 3600.0);
    trace = constant_trace(rate, duration);
  } else if (name == "step") {
    const std::string text = reader.get_string("segments", "");
    if (text.empty())
      throw std::runtime_error("trace step: missing 'segments' parameter");
    std::vector<StepSegment> segments;
    std::istringstream in(text);
    std::string item;
    while (std::getline(in, item, ';')) {
      const std::size_t colon = item.find(':');
      if (colon == std::string::npos)
        throw std::runtime_error(
            "trace step: segments must be rate:duration;... , got '" + item +
            "'");
      segments.push_back({parse_double(item.substr(0, colon)),
                          parse_double(item.substr(colon + 1))});
    }
    trace = step_trace(segments);
  } else if (name == "diurnal") {
    DiurnalOptions options;
    const auto days = static_cast<std::size_t>(reader.get_uint("days", 1));
    options.peak = reader.get_double("peak", options.peak);
    options.trough_fraction =
        reader.get_double("trough_fraction", options.trough_fraction);
    options.peak_hour = reader.get_double("peak_hour", options.peak_hour);
    options.noise = reader.get_double("noise", options.noise);
    options.seed = reader.get_uint("seed", seed);
    trace = diurnal_trace(options, days);
  } else if (name == "flash_crowd") {
    FlashCrowdOptions options;
    options.base = reader.get_double("base", options.base);
    options.burst_peak = reader.get_double("burst_peak", options.burst_peak);
    options.duration = reader.get_double("duration", options.duration);
    options.burst_start =
        reader.get_double("burst_start", options.burst_start);
    options.ramp = reader.get_double("ramp", options.ramp);
    options.hold = reader.get_double("hold", options.hold);
    trace = flash_crowd_trace(options);
  } else if (name == "worldcup_like") {
    WorldCupOptions o;
    o.days = static_cast<std::size_t>(reader.get_uint("days", o.days));
    o.peak = reader.get_double("peak", o.peak);
    o.base_fraction = reader.get_double("base_fraction", o.base_fraction);
    o.tournament_start_day = static_cast<std::size_t>(
        reader.get_uint("tournament_start_day", o.tournament_start_day));
    o.tournament_end_day = static_cast<std::size_t>(
        reader.get_uint("tournament_end_day", o.tournament_end_day));
    o.diurnal_trough = reader.get_double("diurnal_trough", o.diurnal_trough);
    o.match_hours = reader.get_double_list("match_hours", o.match_hours);
    o.match_boost = reader.get_double("match_boost", o.match_boost);
    o.match_duration = reader.get_double("match_duration", o.match_duration);
    o.news_burst_prob_per_day =
        reader.get_double("news_burst_prob_per_day", o.news_burst_prob_per_day);
    o.news_burst_min_amplitude = reader.get_double("news_burst_min_amplitude",
                                                   o.news_burst_min_amplitude);
    o.news_burst_max_amplitude = reader.get_double("news_burst_max_amplitude",
                                                   o.news_burst_max_amplitude);
    o.news_burst_min_duration = reader.get_double("news_burst_min_duration",
                                                  o.news_burst_min_duration);
    o.news_burst_max_duration = reader.get_double("news_burst_max_duration",
                                                  o.news_burst_max_duration);
    o.news_burst_ramp = reader.get_double("news_burst_ramp", o.news_burst_ramp);
    o.micro_bursts_per_day =
        reader.get_double("micro_bursts_per_day", o.micro_bursts_per_day);
    o.micro_burst_min_amplitude = reader.get_double(
        "micro_burst_min_amplitude", o.micro_burst_min_amplitude);
    o.micro_burst_max_amplitude = reader.get_double(
        "micro_burst_max_amplitude", o.micro_burst_max_amplitude);
    o.micro_burst_min_duration = reader.get_double("micro_burst_min_duration",
                                                   o.micro_burst_min_duration);
    o.micro_burst_max_duration = reader.get_double("micro_burst_max_duration",
                                                   o.micro_burst_max_duration);
    o.noise = reader.get_double("noise", o.noise);
    o.poisson_arrivals = reader.get_bool("poisson_arrivals", o.poisson_arrivals);
    o.seed = reader.get_uint("seed", seed);
    trace = worldcup_like_trace(o);
  } else if (name == "file") {
    const std::string path = reader.get_string("file", "");
    if (path.empty())
      throw std::runtime_error("trace file: missing 'file' parameter");
    const auto origin = static_cast<TimePoint>(reader.get_int("origin", 0));
    trace = load_any(path, origin);
  } else {
    unknown_component("trace", name, trace_components());
  }
  // Composable post-generator transforms, applied seasonality-first so
  // spikes ride on top of the shaped envelope rather than being scaled
  // by it. Sub-keys are only consumed when their channel is enabled, so
  // a stray `seasonal.peak_hour` without an amplitude fails loudly in
  // finish() instead of being silently dropped.
  const double seasonal_diurnal = reader.get_double("seasonal.diurnal", 0.0);
  const double seasonal_weekly = reader.get_double("seasonal.weekly", 0.0);
  if (seasonal_diurnal > 0.0 || seasonal_weekly > 0.0) {
    const double peak_hour = reader.get_double("seasonal.peak_hour", 18.0);
    trace = compose_seasonality(trace, seasonal_diurnal, seasonal_weekly,
                                peak_hour);
  }
  const double spike_interarrival =
      reader.get_double("spikes.interarrival", 0.0);
  if (spike_interarrival > 0.0) {
    const double magnitude = reader.get_double("spikes.magnitude", 100.0);
    const double alpha = reader.get_double("spikes.alpha", 1.5);
    const auto duration =
        static_cast<std::size_t>(reader.get_uint("spikes.duration", 60));
    const std::uint64_t spike_seed = reader.get_uint("spikes.seed", seed);
    trace = add_spikes(trace, spike_interarrival, magnitude, alpha, duration,
                       spike_seed);
  }
  reader.finish();
  return trace;
}

std::shared_ptr<Predictor> make_predictor(
    const std::string& name, const std::map<std::string, std::string>& params,
    std::uint64_t seed) {
  ParamReader reader("predictor " + name, params);
  std::unique_ptr<Predictor> predictor;
  if (name == "oracle-max") {
    predictor = std::make_unique<OracleMaxPredictor>();
  } else if (name == "last-value") {
    predictor = std::make_unique<LastValuePredictor>();
  } else if (name == "moving-max") {
    predictor =
        std::make_unique<MovingMaxPredictor>(reader.get_double("window", 378.0));
  } else if (name == "ewma") {
    predictor = std::make_unique<EwmaPredictor>(
        reader.get_double("alpha", 0.3), reader.get_double("headroom", 1.2));
  } else if (name == "linear-trend") {
    predictor = std::make_unique<LinearTrendPredictor>(
        reader.get_double("window", 600.0));
  } else if (name == "seasonal") {
    predictor = std::make_unique<SeasonalPredictor>(
        reader.get_double("period", 86'400.0),
        reader.get_double("headroom", 1.1));
  } else {
    unknown_component("predictor", name, predictor_components());
  }
  const double sigma = reader.get_double("error_sigma", 0.0);
  const double bias = reader.get_double("error_bias", 0.0);
  const std::uint64_t error_seed = reader.get_uint("error_seed", seed);
  reader.finish();
  if (sigma != 0.0 || bias != 0.0)
    return std::make_shared<ErrorInjectingPredictor>(std::move(predictor),
                                                     sigma, bias, error_seed);
  return predictor;
}

namespace {

/// Index of the design's Big machine in its candidate list (the fleet unit
/// of the upper-bound baselines).
std::size_t big_index(const BmlDesign& design) {
  const std::string& name = design.big().name();
  const Catalog& candidates = design.candidates();
  for (std::size_t i = 0; i < candidates.size(); ++i)
    if (candidates[i].name() == name) return i;
  throw std::logic_error("registry: design has no Big candidate");
}

}  // namespace

std::unique_ptr<Scheduler> make_scheduler(
    const std::string& name, const std::map<std::string, std::string>& params,
    std::shared_ptr<const BmlDesign> design,
    std::shared_ptr<Predictor> predictor, QosClass qos) {
  ParamReader reader("scheduler " + name, params);
  std::unique_ptr<Scheduler> scheduler;
  if (name == "bml") {
    scheduler = std::make_unique<BmlScheduler>(
        design, std::move(predictor), reader.get_double("window", 0.0), qos);
  } else if (name == "cost-aware") {
    scheduler = std::make_unique<CostAwareScheduler>(
        design, std::move(predictor), ApplicationModel{}, MigrationModel{},
        reader.get_double("window", 0.0),
        reader.get_double("payback_window", 0.0));
  } else if (name == "reactive") {
    scheduler = std::make_unique<ReactiveScheduler>(
        design, reader.get_double("headroom", 1.0));
  } else if (name == "hysteresis") {
    auto inner = std::make_shared<BmlScheduler>(
        design, std::move(predictor), reader.get_double("window", 0.0), qos);
    scheduler = std::make_unique<HysteresisScheduler>(
        std::move(inner), design, reader.get_double("hold", 300.0));
  } else if (name == "static-max") {
    scheduler =
        std::make_unique<StaticMaxScheduler>(design->big(), big_index(*design));
  } else if (name == "per-day") {
    scheduler =
        std::make_unique<PerDayScheduler>(design->big(), big_index(*design));
  } else {
    unknown_component("scheduler", name, scheduler_components());
  }
  reader.finish();
  return scheduler;
}

}  // namespace bml
