#include "scenario/scenario_spec.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sched/coordinator.hpp"
#include "sim/qos.hpp"
#include "util/csv.hpp"

namespace bml {

namespace {

std::string trim(const std::string& s) {
  const std::size_t start = s.find_first_not_of(" \t\r");
  if (start == std::string::npos) return "";
  const std::size_t end = s.find_last_not_of(" \t\r");
  return s.substr(start, end - start + 1);
}

bool parse_bool(const std::string& key, const std::string& value) {
  if (value == "true") return true;
  if (value == "false") return false;
  throw std::runtime_error("scenario: " + key + " must be true or false, got '" +
                           value + "'");
}

/// Strict numeric parsing that names the offending key. The underlying
/// parse_double / parse_int (util/csv.hpp) require the whole token to be
/// consumed — `3x` is an error, never silently `3` — but their messages
/// only carry the value; spec errors must say which key held it.
double parse_number(const std::string& key, const std::string& value) {
  try {
    return parse_double(value);
  } catch (const std::runtime_error&) {
    throw std::runtime_error("scenario: " + key + " must be a number, got '" +
                             value + "'");
  }
}

std::uint64_t parse_seed(const std::string& key, const std::string& value) {
  std::int64_t v = 0;
  try {
    v = parse_int(value);
  } catch (const std::runtime_error&) {
    throw std::runtime_error("scenario: " + key +
                             " must be a non-negative integer, got '" + value +
                             "'");
  }
  if (v < 0)
    throw std::runtime_error("scenario: " + key + " must be >= 0");
  return static_cast<std::uint64_t>(v);
}

double parse_fraction(const std::string& key, const std::string& value) {
  const double v = parse_number(key, value);
  if (v < 0.0)
    throw std::runtime_error("scenario: " + key + " must be >= 0");
  return v;
}

int parse_count(const std::string& key, const std::string& value) {
  std::int64_t v = 0;
  try {
    v = parse_int(value);
  } catch (const std::runtime_error&) {
    throw std::runtime_error("scenario: " + key +
                             " must be a non-negative integer, got '" + value +
                             "'");
  }
  if (v < 0)
    throw std::runtime_error("scenario: " + key + " must be >= 0");
  return static_cast<int>(v);
}

double parse_slo_target(const std::string& key, const std::string& value) {
  const double v = parse_number(key, value);
  if (v < 0.0 || v > 1.0)
    throw std::runtime_error("scenario: " + key + " must be in [0, 1]");
  return v;
}

double parse_slo_spare(const std::string& key, const std::string& value) {
  const double v = parse_number(key, value);
  if (!(v > 0.0))
    throw std::runtime_error("scenario: " + key + " must be > 0");
  return v;
}

}  // namespace

void AppSpec::set(const std::string& key, const std::string& value) {
  if (key == "name") {
    name = value;
  } else if (key == "trace") {
    trace = value;
  } else if (key == "scheduler") {
    scheduler = value;
  } else if (key == "predictor") {
    predictor = value;
  } else if (key == "qos") {
    (void)parse_qos_class(value);  // validate now, fail loudly here
    qos = value;
  } else if (key == "share") {
    const double v = parse_number("app share", value);
    if (!(v > 0.0))
      throw std::runtime_error("scenario: app share must be > 0");
    share = v;
  } else if (key == "fault_domain") {
    fault_domain = value;
  } else if (key == "replicas") {
    replicas = parse_count("app replicas", value);
    if (replicas < 1)
      throw std::runtime_error("scenario: app replicas must be >= 1");
  } else if (key == "slo.availability") {
    slo_availability = parse_slo_target("app slo.availability", value);
  } else if (key == "slo.spare") {
    slo_spare = parse_slo_spare("app slo.spare", value);
  } else if (key == "priority") {
    priority = parse_count("app priority", value);
  } else if (key == "arrive") {
    arrive = static_cast<std::int64_t>(parse_seed("app arrive", value));
  } else if (key == "depart") {
    depart = static_cast<std::int64_t>(parse_seed("app depart", value));
    if (depart < 1)
      throw std::runtime_error("scenario: app depart must be >= 1");
  } else if (key.starts_with("trace.")) {
    trace_params[key.substr(6)] = value;
  } else if (key.starts_with("scheduler.")) {
    scheduler_params[key.substr(10)] = value;
  } else if (key.starts_with("predictor.")) {
    predictor_params[key.substr(10)] = value;
  } else {
    throw std::runtime_error("scenario: unknown app key '" + key + "'");
  }
}

namespace {

/// Splits an `app<i>.<rest>` sweep/assignment key; returns false when the
/// key does not use the app prefix at all, throws when it does but the
/// index is malformed.
bool split_app_key(const std::string& key, std::size_t& index,
                   std::string& rest) {
  if (!key.starts_with("app")) return false;
  std::size_t pos = 3;
  if (pos >= key.size() || key[pos] < '0' || key[pos] > '9') return false;
  std::size_t value = 0;
  while (pos < key.size() && key[pos] >= '0' && key[pos] <= '9') {
    value = value * 10 + static_cast<std::size_t>(key[pos] - '0');
    ++pos;
  }
  if (pos >= key.size() || key[pos] != '.')
    throw std::runtime_error("scenario: app key '" + key +
                             "' must be app<i>.<key>");
  index = value;
  rest = key.substr(pos + 1);
  return true;
}

}  // namespace

void ScenarioSpec::set(const std::string& key, const std::string& value) {
  {
    std::size_t app_index = 0;
    std::string app_key;
    if (split_app_key(key, app_index, app_key)) {
      if (app_index >= apps.size())
        throw std::runtime_error(
            "scenario: key '" + key + "' addresses app " +
            std::to_string(app_index) + " but the spec declares " +
            std::to_string(apps.size()) + " [app] section(s)");
      apps[app_index].set(app_key, value);
      return;
    }
  }
  if (key == "name") {
    name = value;
  } else if (key == "catalog") {
    catalog = value;
  } else if (key == "trace") {
    trace = value;
  } else if (key == "scheduler") {
    scheduler = value;
  } else if (key == "predictor") {
    predictor = value;
  } else if (key == "design.max_rate") {
    if (value != "trace-peak" && value != "default")
      (void)parse_number(key, value);  // numbers validate now, fail loudly
    design_max_rate = value;
  } else if (key == "design.solver") {
    if (value != "greedy" && value != "exact-dp")
      throw std::runtime_error(
          "scenario: design.solver must be greedy or exact-dp, got '" + value +
          "'");
    design_solver = value;
  } else if (key == "qos") {
    (void)parse_qos_class(value);  // validate now, fail loudly here
    qos = value;
  } else if (key == "graceful_off") {
    graceful_off = parse_bool(key, value);
  } else if (key == "event_driven") {
    event_driven = parse_bool(key, value);
  } else if (key == "faults.boot_time_jitter") {
    boot_time_jitter = parse_fraction(key, value);
  } else if (key == "faults.boot_failure_prob") {
    boot_failure_prob = parse_fraction(key, value);
  } else if (key == "faults.mtbf") {
    fault_mtbf = parse_fraction(key, value);
  } else if (key == "faults.mttr") {
    fault_mttr = parse_fraction(key, value);
  } else if (key == "faults.groups") {
    fault_groups = parse_count(key, value);
  } else if (key == "faults.group_mtbf") {
    fault_group_mtbf = parse_fraction(key, value);
  } else if (key == "faults.group_mttr") {
    fault_group_mttr = parse_fraction(key, value);
  } else if (key == "faults.crews") {
    fault_crews = parse_count(key, value);
  } else if (key == "faults.seed") {
    fault_seed = static_cast<std::int64_t>(parse_seed(key, value));
  } else if (key == "slo.window") {
    slo_window = parse_number(key, value);
    if (slo_window < 1.0)
      throw std::runtime_error("scenario: slo.window must be >= 1 second");
  } else if (key == "slo.availability") {
    slo_availability = parse_slo_target(key, value);
  } else if (key == "slo.spare") {
    slo_spare = parse_slo_spare(key, value);
  } else if (key == "degrade.overload_factor") {
    degrade_overload_factor = parse_fraction(key, value);
  } else if (key == "degrade.penalty") {
    degrade_penalty = parse_slo_target(key, value);
  } else if (key == "churn.interarrival") {
    churn_interarrival = parse_fraction(key, value);
  } else if (key == "churn.lifetime") {
    churn_lifetime = parse_fraction(key, value);
  } else if (key == "churn.template") {
    churn_template = parse_count(key, value);
  } else if (key == "churn.max") {
    churn_max = parse_count(key, value);
  } else if (key == "churn.seed") {
    churn_seed = static_cast<std::int64_t>(parse_seed(key, value));
  } else if (key == "priority") {
    priority = parse_count(key, value);
  } else if (key == "obs.metrics") {
    obs_metrics = parse_bool(key, value);
  } else if (key == "obs.trace") {
    obs_trace = parse_bool(key, value);
  } else if (key == "obs.sample") {
    obs_sample = parse_count(key, value);
    if (obs_sample < 1)
      throw std::runtime_error("scenario: obs.sample must be >= 1 second");
  } else if (key == "seed") {
    seed = parse_seed(key, value);
  } else if (key == "coordinator") {
    (void)parse_coordinator_mode(value);  // validate now, fail loudly here
    coordinator = value;
  } else if (key == "coordinator.budget") {
    if (value != "design-max")
      (void)parse_number(key, value);  // numbers validate now, fail loudly
    coordinator_budget = value;
  } else if (key.starts_with("catalog.")) {
    catalog_params[key.substr(8)] = value;
  } else if (key.starts_with("trace.")) {
    trace_params[key.substr(6)] = value;
  } else if (key.starts_with("scheduler.")) {
    scheduler_params[key.substr(10)] = value;
  } else if (key.starts_with("predictor.")) {
    predictor_params[key.substr(10)] = value;
  } else {
    throw std::runtime_error("scenario: unknown key '" + key + "'");
  }
}

ScenarioSpec parse_scenario(const std::string& text) {
  ScenarioSpec spec;
  std::istringstream in(text);
  std::string line;
  std::size_t line_number = 0;
  // Index of the [app] section the cursor is in; top level until the
  // first section.
  std::ptrdiff_t current_app = -1;
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::string body = trim(line);
    if (body.empty()) continue;

    if (body == "[app]") {
      spec.apps.emplace_back();
      current_app = static_cast<std::ptrdiff_t>(spec.apps.size()) - 1;
      continue;
    }
    if (body.starts_with("[") && body.ends_with("]"))
      throw std::runtime_error("scenario: line " + std::to_string(line_number) +
                               ": unknown section '" + body +
                               "' (only [app] is supported)");

    bool is_sweep = false;
    if (body.starts_with("sweep ") || body.starts_with("sweep\t")) {
      is_sweep = true;
      body = trim(body.substr(6));
    }

    const std::size_t eq = body.find('=');
    if (eq == std::string::npos)
      throw std::runtime_error("scenario: line " + std::to_string(line_number) +
                               ": expected 'key = value'");
    const std::string key = trim(body.substr(0, eq));
    const std::string value = trim(body.substr(eq + 1));
    if (key.empty())
      throw std::runtime_error("scenario: line " + std::to_string(line_number) +
                               ": empty key");
    try {
      if (is_sweep) {
        SweepAxis axis{key, {}};
        std::istringstream values(value);
        std::string v;
        while (std::getline(values, v, ',')) {
          v = trim(v);
          if (!v.empty()) axis.values.push_back(v);
        }
        if (axis.values.empty())
          throw std::runtime_error("scenario: sweep axis '" + key +
                                   "' has no values");
        for (const SweepAxis& existing : spec.sweeps)
          if (existing.key == key)
            throw std::runtime_error("scenario: duplicate sweep axis '" + key +
                                     "'");
        // Every axis value must be assignable; probing now surfaces typos
        // at parse time instead of mid-sweep.
        for (const std::string& candidate : axis.values) {
          ScenarioSpec probe = spec;
          probe.set(key, candidate);
        }
        spec.sweeps.push_back(std::move(axis));
      } else if (current_app >= 0) {
        spec.apps[static_cast<std::size_t>(current_app)].set(key, value);
      } else {
        spec.set(key, value);
      }
    } catch (const std::runtime_error& e) {
      throw std::runtime_error(std::string(e.what()) + " (line " +
                               std::to_string(line_number) + ")");
    }
  }
  return spec;
}

namespace {

void write_params(std::ostringstream& os, const std::string& prefix,
                  const std::map<std::string, std::string>& params) {
  for (const auto& [key, value] : params)
    os << prefix << '.' << key << " = " << value << '\n';
}

}  // namespace

std::string write_scenario(const ScenarioSpec& spec) {
  std::ostringstream os;
  os << "name = " << spec.name << '\n';
  os << "catalog = " << spec.catalog << '\n';
  write_params(os, "catalog", spec.catalog_params);
  os << "trace = " << spec.trace << '\n';
  write_params(os, "trace", spec.trace_params);
  os << "scheduler = " << spec.scheduler << '\n';
  write_params(os, "scheduler", spec.scheduler_params);
  os << "predictor = " << spec.predictor << '\n';
  write_params(os, "predictor", spec.predictor_params);
  os << "design.max_rate = " << spec.design_max_rate << '\n';
  os << "design.solver = " << spec.design_solver << '\n';
  os << "qos = " << spec.qos << '\n';
  os << "graceful_off = " << (spec.graceful_off ? "true" : "false") << '\n';
  os << "event_driven = " << (spec.event_driven ? "true" : "false") << '\n';
  std::ostringstream numbers;
  numbers.precision(17);
  numbers << "faults.boot_time_jitter = " << spec.boot_time_jitter << '\n'
          << "faults.boot_failure_prob = " << spec.boot_failure_prob << '\n'
          << "faults.mtbf = " << spec.fault_mtbf << '\n'
          << "faults.mttr = " << spec.fault_mttr << '\n'
          << "faults.groups = " << spec.fault_groups << '\n'
          << "faults.group_mtbf = " << spec.fault_group_mtbf << '\n'
          << "faults.group_mttr = " << spec.fault_group_mttr << '\n'
          << "faults.crews = " << spec.fault_crews << '\n';
  os << numbers.str();
  if (spec.fault_seed >= 0) os << "faults.seed = " << spec.fault_seed << '\n';
  std::ostringstream slo;
  slo.precision(17);
  slo << "slo.window = " << spec.slo_window << '\n'
      << "slo.availability = " << spec.slo_availability << '\n'
      << "slo.spare = " << spec.slo_spare << '\n';
  os << slo.str();
  // Degrade / priority / observability keys are emitted only when
  // non-default, keeping the canonical form of classic specs stable (same
  // pattern as faults.seed).
  if (spec.degrade_overload_factor != 0.0 || spec.degrade_penalty != 0.5) {
    std::ostringstream degrade;
    degrade.precision(17);
    degrade << "degrade.overload_factor = " << spec.degrade_overload_factor
            << '\n'
            << "degrade.penalty = " << spec.degrade_penalty << '\n';
    os << degrade.str();
  }
  if (spec.churn_interarrival != 0.0 || spec.churn_lifetime != 0.0) {
    std::ostringstream churn;
    churn.precision(17);
    churn << "churn.interarrival = " << spec.churn_interarrival << '\n'
          << "churn.lifetime = " << spec.churn_lifetime << '\n';
    os << churn.str();
  }
  if (spec.churn_template != 0)
    os << "churn.template = " << spec.churn_template << '\n';
  if (spec.churn_max != 0) os << "churn.max = " << spec.churn_max << '\n';
  if (spec.churn_seed >= 0) os << "churn.seed = " << spec.churn_seed << '\n';
  if (spec.priority != 0) os << "priority = " << spec.priority << '\n';
  if (spec.obs_metrics) os << "obs.metrics = true\n";
  if (spec.obs_trace) os << "obs.trace = true\n";
  if (spec.obs_sample != 60) os << "obs.sample = " << spec.obs_sample << '\n';
  os << "seed = " << spec.seed << '\n';
  os << "coordinator = " << spec.coordinator << '\n';
  os << "coordinator.budget = " << spec.coordinator_budget << '\n';
  for (const AppSpec& app : spec.apps) {
    os << "[app]\n";
    if (!app.name.empty()) os << "name = " << app.name << '\n';
    os << "trace = " << app.trace << '\n';
    write_params(os, "trace", app.trace_params);
    os << "scheduler = " << app.scheduler << '\n';
    write_params(os, "scheduler", app.scheduler_params);
    os << "predictor = " << app.predictor << '\n';
    write_params(os, "predictor", app.predictor_params);
    os << "qos = " << app.qos << '\n';
    std::ostringstream share;
    share.precision(17);
    share << "share = " << app.share << '\n';
    os << share.str();
    if (!app.fault_domain.empty())
      os << "fault_domain = " << app.fault_domain << '\n';
    if (app.priority != 0) os << "priority = " << app.priority << '\n';
    if (app.replicas != 1) os << "replicas = " << app.replicas << '\n';
    if (app.arrive != 0) os << "arrive = " << app.arrive << '\n';
    if (app.depart >= 0) os << "depart = " << app.depart << '\n';
    if (app.slo_availability > 0.0 || app.slo_spare != 0.25) {
      std::ostringstream app_slo;
      app_slo.precision(17);
      app_slo << "slo.availability = " << app.slo_availability << '\n'
              << "slo.spare = " << app.slo_spare << '\n';
      os << app_slo.str();
    }
  }
  for (const SweepAxis& axis : spec.sweeps) {
    os << "sweep " << axis.key << " = ";
    for (std::size_t i = 0; i < axis.values.size(); ++i) {
      if (i > 0) os << ',';
      os << axis.values[i];
    }
    os << '\n';
  }
  return os.str();
}

ScenarioSpec load_scenario(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("load_scenario: cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_scenario(buffer.str());
}

void save_scenario(const ScenarioSpec& spec,
                   const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("save_scenario: cannot open " + path.string());
  out << write_scenario(spec);
}

}  // namespace bml
