// Declarative scenario specifications — the data model of the scenario
// engine.
//
// A ScenarioSpec describes one complete simulation: which catalog, which
// trace generator with which parameters, which scheduler and predictor,
// QoS class, fault knobs, and the seed. Specs are plain text (`.scn`
// files): one `key = value` per line, '#' comments, in the same austere
// style as util/csv — no quoting, no sections, strict errors with line
// context. `sweep key = a,b,c` lines declare grid axes that the sweep
// runner (scenario/sweep.hpp) expands into the cartesian product of
// scenarios.
//
//     # three-axis example
//     name = demo
//     catalog = real
//     trace = diurnal
//     trace.days = 1
//     trace.peak = 1500
//     scheduler = bml
//     predictor = oracle-max
//     sweep trace.peak = 500,1500,3000
//     sweep predictor = oracle-max,moving-max
//     sweep scheduler = bml,reactive
//
// Multi-tenant scenarios declare repeatable `[app]` sections after the
// top-level keys, one per colocated application. Each section carries its
// own trace / scheduler / predictor stack, QoS class, capacity share and
// runtime fault domain (`fault_domain`; see the `faults.*` keys below);
// the `coordinator` key selects how per-app proposals merge into the
// cluster decision (`sum` or `partitioned`, see sched/coordinator.hpp).
// Sweep axes address app fields as `app<i>.<key>` (e.g. `sweep
// app0.trace.peak = 500,1000`); sweep lines must come after the sections
// they address. A spec without `[app]` sections is the classic single-app
// experiment (the top-level trace/scheduler/predictor/qos describe the
// one workload), and a spec with exactly one `[app]` section is
// equivalent to it — bit-for-bit, see tests/test_multi_workload.cpp.
//
//     [app]
//     name = frontend
//     trace = diurnal
//     trace.peak = 1500
//     qos = critical
//     share = 2
//     [app]
//     name = batch
//     trace = constant
//     trace.rate = 400
//     predictor = moving-max
//
// Component names and their parameters are resolved by the registry
// (scenario/registry.hpp); the spec layer only routes keys and validates
// the typed top-level fields, so unknown *parameter* values fail at build
// time with the component's context while unknown *keys* fail at parse
// time.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

namespace bml {

/// One grid axis of a sweep: `key` takes each of `values` in order.
struct SweepAxis {
  std::string key;
  std::vector<std::string> values;

  friend bool operator==(const SweepAxis&, const SweepAxis&) = default;
};

/// One application of a multi-tenant scenario (an `[app]` section): its
/// own trace / scheduler / predictor stack, QoS class and capacity share.
struct AppSpec {
  /// Application name (per-app result rows / CSV columns); empty picks
  /// "app<index>" at build time.
  std::string name;
  std::string trace = "constant";
  std::map<std::string, std::string> trace_params;
  std::string scheduler = "bml";
  std::map<std::string, std::string> scheduler_params;
  std::string predictor = "oracle-max";
  std::map<std::string, std::string> predictor_params;
  /// QoS class: `tolerant` or `critical`.
  std::string qos = "tolerant";
  /// Capacity share weight under the partitioned coordinator (> 0).
  double share = 1.0;
  /// Runtime-fault domain name (`fault_domain` key): apps naming the same
  /// domain share one crash/repair process; empty = the app's own private
  /// domain (see app/workload.hpp).
  std::string fault_domain;
  /// Availability SLO target (`slo.availability`, in [0, 1]; 0 disables):
  /// while the app's fault domain dips below the target over the trailing
  /// `slo.window`, the coordinator provisions `slo.spare` extra capacity
  /// (fraction of the app's proposal, > 0; see app/workload.hpp).
  double slo_availability = 0.0;
  double slo_spare = 0.25;
  /// Priority class (`priority` key, integer >= 0, default 0; see
  /// app/workload.hpp): ranks tenants for graceful degradation — budget
  /// trims, SLO spares and strike preemption all favour higher classes.
  /// Only meaningful with the partitioned coordinator when at least two
  /// apps' priorities differ.
  int priority = 0;
  /// Expansion factor (`replicas` key, >= 1): the sweep build stamps out
  /// this many copies of the app, each with its own derived trace seed
  /// and an indexed name suffix — the fleet-scale way to describe
  /// thousands of workloads without thousands of [app] sections. Copies
  /// sharing a non-empty fault_domain still share one domain.
  int replicas = 1;
  /// Tenant lifecycle (`arrive` / `depart` keys, whole seconds): the app
  /// serves only over [arrive, depart). `arrive` 0 = present from the
  /// start; `depart` -1 = stays to the end. When both defaults hold for
  /// every app (and no churn.* generator runs) the scenario is the classic
  /// fixed-tenant model, byte-identical to a lifecycle-unaware build.
  std::int64_t arrive = 0;
  std::int64_t depart = -1;

  /// Routes one section-local `key = value` assignment; throws
  /// std::runtime_error on unknown keys or malformed typed values.
  void set(const std::string& key, const std::string& value);

  friend bool operator==(const AppSpec&, const AppSpec&) = default;
};

/// Everything needed to run one simulation, as data. Component parameters
/// are kept as ordered string maps and interpreted by the registry, which
/// rejects unknown or malformed entries when the scenario is built.
struct ScenarioSpec {
  std::string name = "scenario";
  /// Catalog registry name (`real`, `illustrative`, `file`).
  std::string catalog = "real";
  std::map<std::string, std::string> catalog_params;
  /// Trace generator registry name (`constant`, `step`, `diurnal`,
  /// `flash_crowd`, `worldcup_like`, `file`).
  std::string trace = "constant";
  std::map<std::string, std::string> trace_params;
  /// Scheduler registry name (`bml`, `cost-aware`, `reactive`,
  /// `hysteresis`, `static-max`, `per-day`).
  std::string scheduler = "bml";
  std::map<std::string, std::string> scheduler_params;
  /// Predictor registry name (`oracle-max`, `last-value`, `moving-max`,
  /// `ewma`, `linear-trend`, `seasonal`).
  std::string predictor = "oracle-max";
  std::map<std::string, std::string> predictor_params;
  /// Design sizing: `trace-peak` (default; max_rate = max(trace peak, 1)),
  /// `default` (4x Big), or a number.
  std::string design_max_rate = "trace-peak";
  /// Final-step solver: `greedy` (the paper's algorithm) or `exact-dp`.
  std::string design_solver = "greedy";
  /// QoS class: `tolerant` or `critical`.
  std::string qos = "tolerant";
  /// SimulatorOptions knobs.
  bool graceful_off = true;
  bool event_driven = true;
  /// Fault injection (sim/cluster.hpp FaultModel): the boot-path channel
  /// (`faults.boot_time_jitter`, `faults.boot_failure_prob`) and the
  /// runtime crash/repair channel (`faults.mtbf`, `faults.mttr` — mean
  /// seconds between failure strikes per fault domain per architecture,
  /// and mean repair seconds; 0 disables).
  double boot_time_jitter = 0.0;
  double boot_failure_prob = 0.0;
  double fault_mtbf = 0.0;
  double fault_mttr = 0.0;
  /// Correlated strikes (`faults.groups`, `faults.group_mtbf`,
  /// `faults.group_mttr`): each fault domain is striped across `groups`
  /// racks, and every rack runs its own renewal process of mean
  /// group_mtbf seconds; one rack strike fells every On machine of the
  /// rack's stripe at once (sim/fault_timeline.hpp). 0 groups or 0 mtbf
  /// disables the channel.
  int fault_groups = 0;
  double fault_group_mtbf = 0.0;
  double fault_group_mttr = 0.0;
  /// Repair crews (`faults.crews`): concurrent repairs; excess repairs
  /// queue FIFO, making effective MTTR queueing-dependent. 0 = unlimited.
  int fault_crews = 0;
  /// Fault seed override (`faults.seed`, >= 0); -1 inherits the master
  /// seed. Faults are runtime-only inputs, so sweeping `faults.seed` does
  /// not force per-scenario catalog/trace/design rebuilds the way a
  /// `seed` axis does.
  std::int64_t fault_seed = -1;
  /// Trailing window (s, whole seconds >= 1) of the per-app availability
  /// SLOs (`slo.window`; see SimulatorOptions::slo_window). The top-level
  /// `slo.availability` / `slo.spare` describe the classic single-app
  /// workload, exactly like the top-level trace / scheduler fields.
  double slo_window = 86400.0;
  double slo_availability = 0.0;
  double slo_spare = 0.25;
  /// Degraded-mode serving (`degrade.*` keys; see sim/cluster.hpp
  /// DegradeModel): while offered load exceeds the On fleet's rated
  /// capacity, the surviving machines absorb spill-over up to
  /// `degrade.overload_factor` x rated capacity (0 disables, the
  /// default), each absorbed req/s serving only (1 - `degrade.penalty`)
  /// effectively (penalty in [0, 1]). Runtime-only knobs: sweeping them
  /// keeps the shared catalog/trace/design build.
  double degrade_overload_factor = 0.0;
  double degrade_penalty = 0.5;
  /// Stochastic tenant churn (`churn.*` keys; all runtime-only, so
  /// sweeping them keeps the shared catalog/trace/design build). When
  /// both `churn.interarrival` and `churn.lifetime` are > 0, the sweep
  /// build appends a seed-deterministic stream of transient tenants:
  /// exponential arrival gaps of mean `churn.interarrival` seconds,
  /// exponential lifetimes of mean `churn.lifetime` seconds, each clone
  /// stamped from the [app] section indexed by `churn.template` (its
  /// built trace is shared; scheduler/predictor are fresh instances).
  /// `churn.max` caps the clone count (0 = unlimited) and `churn.seed`
  /// overrides the master seed for the churn stream (-1 inherits). The
  /// draws are state-independent, so results are identical across
  /// --threads values.
  double churn_interarrival = 0.0;
  double churn_lifetime = 0.0;
  int churn_template = 0;
  int churn_max = 0;
  std::int64_t churn_seed = -1;
  /// Priority class of the classic single-app workload (`priority` key),
  /// exactly like the top-level trace / scheduler fields. Only meaningful
  /// across multiple [app] sections (validated at build time).
  int priority = 0;
  /// Observability (`obs.*` keys; all runtime-only, so sweeping them keeps
  /// the shared build): `obs.metrics` collects the simulator self-metrics
  /// (SimulationResult::metrics — results are bit-identical with it on or
  /// off), `obs.trace` records the Chrome trace-event timeline
  /// (SimulationResult::timeline; forces the per-second reference path,
  /// like event logging), and `obs.sample` is the timeline counter-sample
  /// period in seconds (>= 1).
  bool obs_metrics = false;
  bool obs_trace = false;
  int obs_sample = 60;
  /// Master seed: trace generators and fault injection derive theirs from
  /// it unless overridden per component (`trace.seed`, `faults.seed`,
  /// ...).
  std::uint64_t seed = 1;
  /// How per-app proposals merge into the cluster-wide decision: `sum`
  /// (baseline) or `partitioned` (clamp each app to its capacity share;
  /// see sched/coordinator.hpp).
  std::string coordinator = "sum";
  /// Partitioned-mode capacity budget (req/s): a number, or `design-max`
  /// (the built design's max rate).
  std::string coordinator_budget = "design-max";
  /// Colocated applications (`[app]` sections). Empty = the classic
  /// single-app experiment described by the top-level trace / scheduler /
  /// predictor / qos fields.
  std::vector<AppSpec> apps;
  /// Grid axes, expanded by expand_sweep() in declaration order (first
  /// axis outermost). Axis keys may address app fields as `app<i>.<key>`.
  std::vector<SweepAxis> sweeps;

  /// Routes one `key = value` assignment to the field or component
  /// parameter map it names; throws std::runtime_error on unknown keys or
  /// malformed typed values. This is also how sweep axes apply their
  /// values, so anything parseable is sweepable.
  void set(const std::string& key, const std::string& value);

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

/// Parses `.scn` text; throws std::runtime_error with line context.
[[nodiscard]] ScenarioSpec parse_scenario(const std::string& text);

/// Canonical text form; parse_scenario(write_scenario(s)) == s.
[[nodiscard]] std::string write_scenario(const ScenarioSpec& spec);

/// File variants of the above.
[[nodiscard]] ScenarioSpec load_scenario(const std::filesystem::path& path);
void save_scenario(const ScenarioSpec& spec,
                   const std::filesystem::path& path);

}  // namespace bml
