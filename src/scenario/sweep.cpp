#include "scenario/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <map>
#include <optional>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "scenario/registry.hpp"
#include "util/csv.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace bml {

namespace {

double elapsed_seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

/// Numeric cell formatting shared with CsvWriter (12 significant digits).
std::string csv_num(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

ReqRate design_max_rate(const ScenarioSpec& spec,
                        const std::vector<const LoadTrace*>& traces) {
  if (spec.design_max_rate == "trace-peak") {
    // The shared cluster is designed for the aggregate demand: the peak
    // of the element-wise trace sum. A single app sums to its own trace,
    // which keeps single-app sizing bit-identical to the pre-multi-tenant
    // engine.
    const ReqRate peak = traces.size() == 1 ? traces.front()->peak()
                                            : combined_trace(traces).peak();
    return std::max(peak, 1.0);
  }
  if (spec.design_max_rate == "default") return 0.0;
  return parse_double(spec.design_max_rate);
}

/// Applies one grid point to a copy of the base spec and names it after
/// its coordinates.
ScenarioSpec grid_point(const ScenarioSpec& base,
                        const std::vector<std::string>& values) {
  ScenarioSpec spec = base;
  spec.sweeps.clear();
  std::string suffix;
  for (std::size_t a = 0; a < base.sweeps.size(); ++a) {
    spec.set(base.sweeps[a].key, values[a]);
    suffix += (a == 0 ? "[" : ",") + base.sweeps[a].key + "=" + values[a];
  }
  if (!suffix.empty()) spec.name += suffix + "]";
  return spec;
}

/// Axis values of grid index `i`, first axis outermost.
std::vector<std::string> grid_values(const ScenarioSpec& spec,
                                     std::size_t i) {
  std::vector<std::string> values(spec.sweeps.size());
  std::size_t stride = 1;
  for (std::size_t a = spec.sweeps.size(); a-- > 0;) {
    const std::vector<std::string>& axis = spec.sweeps[a].values;
    values[a] = axis[(i / stride) % axis.size()];
    stride *= axis.size();
  }
  return values;
}

std::size_t grid_size(const ScenarioSpec& spec) {
  std::size_t n = 1;
  for (const SweepAxis& axis : spec.sweeps) n *= axis.values.size();
  return n;
}

/// True when a sweep axis addresses a trace field — top-level
/// (`trace`, `trace.*`) or app-scoped (`app<i>.trace`, `app<i>.trace.*`)
/// — i.e. an axis a shared trace would silently override.
bool is_trace_axis(const std::string& key) {
  std::string_view k = key;
  if (k.starts_with("app")) {
    std::size_t pos = 3;
    while (pos < k.size() && k[pos] >= '0' && k[pos] <= '9') ++pos;
    if (pos > 3 && pos < k.size() && k[pos] == '.') k.remove_prefix(pos + 1);
  }
  return k == "trace" || k.starts_with("trace.");
}

}  // namespace

namespace {

/// Per-app random stream derived from the master seed (golden-ratio
/// stepping), otherwise identically-configured tenants would replay
/// byte-identical noise and bias colocation results. App 0 keeps the
/// master seed itself, which pins single-[app] equivalence; per-section
/// `trace.seed` / `predictor.error_seed` still override. Masked to 63
/// bits: seeds round-trip through the registry's non-negative integer
/// parameters.
std::uint64_t app_seed(const ScenarioSpec& spec, std::size_t i) {
  return (spec.seed + 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(i)) &
         0x7FFF'FFFF'FFFF'FFFFULL;
}

/// The three runtime channels whose *configuration* gates CSV column
/// groups (schema must be a function of the spec, never the outcome).
bool spec_groups_enabled(const ScenarioSpec& spec) {
  return spec.fault_groups > 0 && spec.fault_group_mtbf > 0.0;
}

bool spec_faults_enabled(const ScenarioSpec& spec) {
  return spec.fault_mtbf > 0.0 || spec_groups_enabled(spec);
}

/// Effective app list: the `[app]` sections, or the classic single app
/// described by the top-level trace / scheduler / predictor / qos fields.
/// Sections with `replicas = N` are stamped out N times — each copy gets
/// its own expanded index (and thus its own app_seed-derived trace /
/// predictor noise) and an indexed name suffix; a shared fault_domain
/// name keeps the copies in one domain.
std::vector<AppSpec> effective_apps(const ScenarioSpec& spec) {
  std::vector<AppSpec> raw;
  if (!spec.apps.empty()) {
    raw = spec.apps;
  } else {
    AppSpec app;
    app.trace = spec.trace;
    app.trace_params = spec.trace_params;
    app.scheduler = spec.scheduler;
    app.scheduler_params = spec.scheduler_params;
    app.predictor = spec.predictor;
    app.predictor_params = spec.predictor_params;
    app.qos = spec.qos;
    app.slo_availability = spec.slo_availability;
    app.slo_spare = spec.slo_spare;
    app.priority = spec.priority;
    raw.push_back(std::move(app));
  }
  bool expand = false;
  for (const AppSpec& app : raw)
    if (app.replicas > 1) expand = true;
  if (!expand) return raw;
  std::size_t total = 0;
  for (const AppSpec& app : raw)
    total += static_cast<std::size_t>(app.replicas);
  std::vector<AppSpec> out;
  out.reserve(total);
  for (const AppSpec& app : raw) {
    if (app.replicas == 1) {
      out.push_back(app);
      continue;
    }
    for (int r = 0; r < app.replicas; ++r) {
      AppSpec copy = app;
      copy.replicas = 1;
      if (!copy.name.empty()) copy.name += "-" + std::to_string(r);
      out.push_back(std::move(copy));
    }
  }
  return out;
}

bool spec_slo_enabled(const ScenarioSpec& spec) {
  for (const AppSpec& app : effective_apps(spec))
    if (app.slo_availability > 0.0) return true;
  return false;
}

bool spec_degrade_enabled(const ScenarioSpec& spec) {
  return spec.degrade_overload_factor > 0.0;
}

/// Priority classes only rank something when at least two effective apps
/// differ — a fleet of equal classes is byte-identical to a
/// priority-unaware run, so it keeps the priority-free schema.
bool spec_priority_enabled(const ScenarioSpec& spec) {
  const std::vector<AppSpec> apps = effective_apps(spec);
  for (const AppSpec& app : apps)
    if (app.priority != apps.front().priority) return true;
  return false;
}

/// Tenant churn: configured either explicitly (any [app] with a non-default
/// arrive/depart window) or stochastically (both churn.* rates set). Gates
/// the churn CSV column group on configuration, not outcome, like faults.
bool spec_churn_enabled(const ScenarioSpec& spec) {
  if (spec.churn_interarrival > 0.0 && spec.churn_lifetime > 0.0) return true;
  for (const AppSpec& app : effective_apps(spec))
    if (app.arrive > 0 || app.depart >= 0) return true;
  return false;
}

/// Exponential whole-second draw, >= 1 s — the same transform the fault
/// timeline uses, so churn gaps and lifetimes follow the repo-wide idiom.
/// State-independent: each draw consumes exactly one uniform, so the
/// stream is a pure function of (seed, draw index) and results are
/// identical across --threads values.
TimePoint churn_exponential_seconds(Rng& rng, double mean) {
  const double u = rng.uniform(0.0, 1.0);
  const double draw = std::min(-mean * std::log(1.0 - u), 1.0e15);
  return std::max<TimePoint>(1, static_cast<TimePoint>(std::ceil(draw)));
}

/// One stochastic transient tenant: active over [arrive, depart).
struct TenantClone {
  TimePoint arrive;
  TimePoint depart;
};

/// Draws the churn timeline for a spec: exponential arrival gaps of mean
/// churn.interarrival, exponential lifetimes of mean churn.lifetime,
/// stopping at the trace horizon (arrivals at or past it would never
/// serve) or at churn.max clones. The stream is salted off the churn seed
/// exactly like the fault timeline's channels, so trace / fault noise is
/// untouched by turning churn on.
std::vector<TenantClone> churn_timeline(const ScenarioSpec& spec,
                                        TimePoint horizon) {
  std::vector<TenantClone> clones;
  const std::uint64_t base = spec.churn_seed >= 0
                                 ? static_cast<std::uint64_t>(spec.churn_seed)
                                 : spec.seed;
  Rng rng(base + 0x9E3779B97F4A7C15ULL * 0x636875726EULL);  // "churn"
  TimePoint at = 0;
  while (true) {
    at += churn_exponential_seconds(rng, spec.churn_interarrival);
    if (at >= horizon) break;
    clones.push_back(
        TenantClone{at, at + churn_exponential_seconds(rng, spec.churn_lifetime)});
    if (spec.churn_max > 0 &&
        clones.size() >= static_cast<std::size_t>(spec.churn_max))
      break;
  }
  return clones;
}

/// The expensive immutable artifacts of a scenario: catalog, traces (and
/// their compiled RLE forms), the design (with its CombinationTable /
/// DecisionThresholds), and the dispatch plan. Everything here is
/// read-only after construction, so a sweep whose axes don't touch the
/// inputs of any of these builds one ScenarioBuild and shares it across
/// all grid points and worker threads; the remaining per-scenario state
/// (schedulers, predictors, cluster, meters) is constructed per run.
struct ScenarioBuild {
  // `traces` points into `own_traces` (or at the caller's shared trace):
  // copying or moving would dangle it, so neither is allowed.
  ScenarioBuild(const ScenarioBuild&) = delete;
  ScenarioBuild& operator=(const ScenarioBuild&) = delete;

  ScenarioBuild(const ScenarioSpec& spec, const LoadTrace* shared_trace) {
    catalog = make_catalog(spec.catalog, spec.catalog_params);
    const std::vector<AppSpec> apps = effective_apps(spec);
    if (shared_trace && apps.size() > 1)
      throw std::runtime_error(
          "run_scenario: a shared trace requires a single-workload spec");

    traces.resize(apps.size());
    compiled.resize(apps.size());
    if (shared_trace) {
      own_compiled.reserve(1);
      own_compiled.emplace_back(*shared_trace);
      traces[0] = shared_trace;
      compiled[0] = &own_compiled.front();
    } else {
      // Identical traces are materialised once: replica expansion stamps
      // out whole groups whose generators ignore the per-app seed, and a
      // fleet of thousands of tenants must not hold thousands of copies
      // of the same day-long sample buffer (or compile the same RLE form
      // repeatedly). The FNV hash only shortlists candidates; sharing
      // requires an exact sample-for-sample match, so aliasing distinct
      // traces is impossible.
      own_traces.reserve(apps.size());
      own_compiled.reserve(apps.size());
      std::map<std::uint64_t, std::vector<std::size_t>> by_hash;
      for (std::size_t i = 0; i < apps.size(); ++i) {
        LoadTrace t =
            make_trace(apps[i].trace, apps[i].trace_params, app_seed(spec, i));
        const std::span<const double> v = t.series().values();
        std::uint64_t h =
            1469598103934665603ULL ^ static_cast<std::uint64_t>(v.size());
        for (const double x : v) {
          std::uint64_t bits = 0;
          std::memcpy(&bits, &x, sizeof bits);
          h = (h ^ bits) * 1099511628211ULL;
        }
        std::size_t found = apps.size();
        for (const std::size_t j : by_hash[h]) {
          const std::span<const double> w = own_traces[j].series().values();
          if (w.size() == v.size() &&
              std::equal(v.begin(), v.end(), w.begin())) {
            found = j;
            break;
          }
        }
        if (found == apps.size()) {
          own_traces.push_back(std::move(t));
          own_compiled.emplace_back(own_traces.back());
          found = own_traces.size() - 1;
          by_hash[h].push_back(found);
        }
        traces[i] = &own_traces[found];
        compiled[i] = &own_compiled[found];
      }
    }

    BmlDesignOptions design_options;
    design_options.max_rate = design_max_rate(spec, traces);
    design_options.solver = spec.design_solver == "exact-dp"
                                ? SolverKind::kExactDp
                                : SolverKind::kGreedyThreshold;
    design =
        std::make_shared<BmlDesign>(BmlDesign::build(catalog, design_options));
    plan = std::make_shared<DispatchPlan>(design->candidates());
  }

  Catalog catalog;
  /// Distinct materialised traces and their RLE forms (deduplicated).
  std::vector<LoadTrace> own_traces;
  std::vector<CompiledTrace> own_compiled;
  /// Per-app pointers into the distinct storage (or the shared trace) —
  /// parallel to the app list; replicas of one config share one target.
  std::vector<const LoadTrace*> traces;
  std::vector<const CompiledTrace*> compiled;
  std::shared_ptr<const BmlDesign> design;
  std::shared_ptr<const DispatchPlan> plan;
};

/// Executes `spec` over a (possibly shared) prebuilt ScenarioBuild. Only
/// per-scenario state is constructed here; `start` is when this scenario's
/// work began (including its build when it was not shared).
ScenarioResult run_built(const ScenarioSpec& spec, const ScenarioBuild& build,
                         std::chrono::steady_clock::time_point start) {
  ScenarioResult result;
  result.spec = spec;

  const std::vector<AppSpec> apps = effective_apps(spec);
  // `priority` ranks colocated tenants against each other; on a
  // single-workload spec under the sum coordinator there is nothing to
  // rank and no budget to trim, so a configured class is a spec error
  // rather than a silent no-op.
  if (apps.size() == 1 && apps[0].priority != 0 && spec.coordinator == "sum")
    throw std::runtime_error(
        "scenario: priority = " + std::to_string(apps[0].priority) +
        " has no effect on a single-workload spec with coordinator = sum; "
        "priority ranks colocated [app] sections");

  // Stochastic tenant churn: a runtime-only expansion (the shared build
  // is untouched — clones alias the template's built trace and compiled
  // form, and the design stays sized for the declared tenants, which is
  // exactly what a churn-aware coordinator must cope with).
  const bool churn_on =
      spec.churn_interarrival > 0.0 || spec.churn_lifetime > 0.0;
  std::size_t churn_tmpl = 0;
  std::vector<TenantClone> clones;
  if (churn_on) {
    if (!(spec.churn_interarrival > 0.0) || !(spec.churn_lifetime > 0.0))
      throw std::runtime_error(
          "scenario: churn.interarrival and churn.lifetime must be set "
          "together");
    const std::size_t sections = spec.apps.empty() ? 1 : spec.apps.size();
    if (static_cast<std::size_t>(spec.churn_template) >= sections)
      throw std::runtime_error(
          "scenario: churn.template = " + std::to_string(spec.churn_template) +
          " but the spec declares " + std::to_string(sections) +
          " [app] section(s)");
    // churn.template addresses the raw [app] section; replicas expansion
    // maps it to the section's first effective app.
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(spec.churn_template); ++k)
      churn_tmpl += static_cast<std::size_t>(spec.apps[k].replicas);
    TimePoint horizon = 0;
    for (const LoadTrace* t : build.traces)
      horizon = std::max(horizon, static_cast<TimePoint>(t->size()));
    clones = churn_timeline(spec, horizon);
  }
  const std::size_t total = apps.size() + clones.size();

  std::vector<std::string> names(total);
  for (std::size_t i = 0; i < apps.size(); ++i)
    names[i] =
        apps[i].name.empty() ? "app" + std::to_string(i) : apps[i].name;
  for (std::size_t j = 0; j < clones.size(); ++j)
    names[apps.size() + j] = names[churn_tmpl] + "+c" + std::to_string(j);

  std::vector<QosClass> qos(total);
  std::vector<std::unique_ptr<Scheduler>> schedulers;
  schedulers.reserve(total);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    qos[i] = parse_qos_class(apps[i].qos);
    std::shared_ptr<Predictor> predictor = make_predictor(
        apps[i].predictor, apps[i].predictor_params, app_seed(spec, i));
    schedulers.push_back(make_scheduler(apps[i].scheduler,
                                        apps[i].scheduler_params, build.design,
                                        std::move(predictor), qos[i]));
  }
  for (std::size_t j = 0; j < clones.size(); ++j) {
    // Clones get fresh scheduler/predictor instances with their own
    // derived seeds (continuing the app_seed index space past the
    // declared tenants), exactly like replica expansion.
    const AppSpec& tmpl = apps[churn_tmpl];
    const std::size_t idx = apps.size() + j;
    qos[idx] = parse_qos_class(tmpl.qos);
    std::shared_ptr<Predictor> predictor = make_predictor(
        tmpl.predictor, tmpl.predictor_params, app_seed(spec, idx));
    schedulers.push_back(make_scheduler(tmpl.scheduler, tmpl.scheduler_params,
                                        build.design, std::move(predictor),
                                        qos[idx]));
  }

  SimulatorOptions options;
  options.graceful_off = spec.graceful_off;
  options.event_driven = spec.event_driven;
  options.coordinator = parse_coordinator_mode(spec.coordinator);
  options.coordinator_budget = spec.coordinator_budget == "design-max"
                                   ? build.design->max_rate()
                                   : parse_double(spec.coordinator_budget);
  options.faults.boot_time_jitter = spec.boot_time_jitter;
  options.faults.boot_failure_prob = spec.boot_failure_prob;
  options.faults.mtbf = spec.fault_mtbf;
  options.faults.mttr = spec.fault_mttr;
  options.faults.groups = spec.fault_groups;
  options.faults.group_mtbf = spec.fault_group_mtbf;
  options.faults.group_mttr = spec.fault_group_mttr;
  options.faults.crews = spec.fault_crews;
  options.faults.seed = spec.fault_seed >= 0
                            ? static_cast<std::uint64_t>(spec.fault_seed)
                            : spec.seed;
  options.slo_window = spec.slo_window;
  options.degrade.overload_factor = spec.degrade_overload_factor;
  options.degrade.penalty = spec.degrade_penalty;
  options.collect_metrics = spec.obs_metrics;
  options.record_timeline = spec.obs_trace;
  options.timeline_sample_every = static_cast<std::size_t>(spec.obs_sample);
  // A timeline wants the whole event stream, not the default audit ring;
  // still bounded, so a multi-month run cannot balloon.
  if (spec.obs_trace)
    options.event_log_capacity = std::max<std::size_t>(
        options.event_log_capacity, std::size_t{1} << 16);

  const Simulator simulator(build.design->candidates(), build.plan, options);
  std::vector<Simulator::WorkloadView> views;
  views.reserve(total);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    Simulator::WorkloadView view{
        &names[i], build.traces[i], schedulers[i].get(), qos[i],
        apps[i].share, build.compiled[i], &apps[i].fault_domain};
    view.slo_availability = apps[i].slo_availability;
    view.slo_spare = apps[i].slo_spare;
    view.priority = apps[i].priority;
    view.arrive = apps[i].arrive;
    view.depart = apps[i].depart;
    views.push_back(view);
  }
  for (std::size_t j = 0; j < clones.size(); ++j) {
    const AppSpec& tmpl = apps[churn_tmpl];
    const std::size_t idx = apps.size() + j;
    Simulator::WorkloadView view{
        &names[idx], build.traces[churn_tmpl], schedulers[idx].get(),
        qos[idx], tmpl.share, build.compiled[churn_tmpl],
        &tmpl.fault_domain};
    view.slo_availability = tmpl.slo_availability;
    view.slo_spare = tmpl.slo_spare;
    view.priority = tmpl.priority;
    view.arrive = clones[j].arrive;
    view.depart = clones[j].depart;
    views.push_back(view);
  }
  MultiSimulationResult multi = simulator.run(views);
  result.sim = std::move(multi.total);
  result.apps = std::move(multi.apps);
  for (const LoadTrace* t : build.traces)
    result.trace_duration = std::max(result.trace_duration, t->duration());
  result.wall_seconds = elapsed_seconds(start);
  return result;
}

ScenarioResult run_scenario_impl(const ScenarioSpec& spec,
                                 const LoadTrace* shared_trace) {
  const auto start = std::chrono::steady_clock::now();
  const ScenarioBuild build(spec, shared_trace);
  return run_built(spec, build, start);
}

/// True when a sweep axis addresses an input of ScenarioBuild — catalog or
/// design parameters, the master seed (trace generation and fault noise
/// derive from it), or any trace field. Such an axis forces per-scenario
/// builds; every other axis (scheduler, predictor, qos, coordinator,
/// fault knobs, app shares, ...) leaves the build shareable. The fault
/// model is seed-bearing but runtime-only — `faults.*` axes (including
/// `faults.seed`) never touch the catalog / traces / design, so the
/// shared build stays correct under fault sweeps; only the master `seed`
/// axis (which fault seeds default to) blocks sharing, because it also
/// feeds trace generation.
bool axis_blocks_shared_build(const std::string& key) {
  return key == "catalog" || key.starts_with("catalog.") ||
         key.starts_with("design.") || key == "seed" || is_trace_axis(key);
}

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  return run_scenario_impl(spec, nullptr);
}

ScenarioResult run_scenario(const ScenarioSpec& spec,
                            const LoadTrace& trace) {
  return run_scenario_impl(spec, &trace);
}

std::vector<ScenarioSpec> expand_sweep(const ScenarioSpec& spec) {
  const std::size_t n = grid_size(spec);
  std::vector<ScenarioSpec> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(grid_point(spec, grid_values(spec, i)));
  return out;
}

SweepReport run_sweep(const ScenarioSpec& spec, const SweepOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  SweepReport report;
  report.threads =
      options.threads == 0 ? default_parallelism() : options.threads;
  for (const SweepAxis& axis : spec.sweeps) {
    if (options.shared_trace && is_trace_axis(axis.key))
      throw std::runtime_error(
          "run_sweep: axis '" + axis.key +
          "' conflicts with the shared trace (every scenario replays it)");
    // With [app] sections the top-level workload fields are ignored —
    // sweeping one would expand a grid whose rows are all identical.
    if (!spec.apps.empty())
      // slo.window stays global; slo.availability / slo.spare / priority
      // are per-workload like the trace / scheduler stack.
      for (const char* ignored :
           {"trace", "scheduler", "predictor", "qos", "slo.availability",
            "slo.spare", "priority"})
        if (axis.key == ignored ||
            axis.key.starts_with(std::string(ignored) + "."))
          throw std::runtime_error(
              "run_sweep: axis '" + axis.key +
              "' addresses the top-level workload fields, which [app] "
              "sections replace; sweep app<i>." +
              axis.key + " instead");
    report.axis_keys.push_back(axis.key);
  }

  const std::size_t n = grid_size(spec);
  report.rows.resize(n);
  if (options.keep_results) report.results.resize(n);

  // Build caching: when no axis touches a catalog / design / trace / seed
  // input, every grid point needs the exact same catalog, traces, design
  // (CombinationTable + DecisionThresholds), dispatch plan and compiled
  // traces — build them once here and share the immutable result across
  // all worker threads instead of rebuilding per scenario. Axes that do
  // touch build inputs fall back to the per-scenario build.
  bool shareable = true;
  for (const SweepAxis& axis : spec.sweeps)
    if (axis_blocks_shared_build(axis.key)) shareable = false;
  std::optional<ScenarioBuild> shared_build;
  if (shareable) shared_build.emplace(spec, options.shared_trace);

  parallel_for(
      n,
      [&](std::size_t i) {
        const auto scenario_start = std::chrono::steady_clock::now();
        const std::vector<std::string> values = grid_values(spec, i);
        ScenarioResult result =
            shared_build.has_value()
                ? run_built(grid_point(spec, values), *shared_build,
                            scenario_start)
                : run_scenario_impl(grid_point(spec, values),
                                    options.shared_trace);

        SweepRow& row = report.rows[i];
        row.scenario = result.spec.name;
        row.axis_values = values;
        row.scheduler = result.sim.scheduler_name;
        row.total_energy = result.sim.total_energy();
        row.compute_energy = result.sim.compute_energy;
        row.reconfiguration_energy = result.sim.reconfiguration_energy;
        row.reconfigurations = result.sim.reconfigurations;
        row.qos_violation_seconds = result.sim.qos.violation_seconds;
        row.served_fraction = result.sim.qos.served_fraction();
        row.mean_power = result.trace_duration > 0.0
                             ? result.sim.total_energy() / result.trace_duration
                             : 0.0;
        row.peak_machines = result.sim.peak_machines;
        row.faults_enabled = spec_faults_enabled(result.spec);
        row.machine_failures = result.sim.machine_failures;
        row.availability = result.sim.availability;
        row.lost_capacity = result.sim.lost_capacity;
        row.groups_enabled = spec_groups_enabled(result.spec);
        row.group_strikes = result.sim.group_strikes;
        row.slo_enabled = spec_slo_enabled(result.spec);
        row.spare_seconds = result.sim.spare_seconds;
        row.spare_energy = result.sim.spare_energy;
        row.degrade_enabled = spec_degrade_enabled(result.spec);
        row.overload_seconds = result.sim.overload_seconds;
        row.penalty_lost = result.sim.penalty_lost_capacity;
        row.priority_enabled = spec_priority_enabled(result.spec);
        row.preemptions = result.sim.preemptions;
        row.churn_enabled = spec_churn_enabled(result.spec);
        row.arrivals = result.sim.arrivals;
        row.departures = result.sim.departures;
        row.apps.reserve(result.apps.size());
        for (const WorkloadResult& app : result.apps)
          row.apps.push_back(SweepAppRow{
              app.name, app.compute_energy, app.reconfiguration_energy,
              app.qos_stats.violation_seconds,
              app.qos_stats.served_fraction(), app.availability,
              app.lost_capacity, app.spare_seconds, app.spare_energy,
              app.overload_seconds, app.penalty_lost_capacity,
              app.preempted_seconds, app.active_seconds});
        row.wall_seconds = result.wall_seconds;
        row.metrics = result.sim.metrics;
        if (options.keep_results) report.results[i] = std::move(result);
      },
      report.threads);

  report.builds = shareable ? (n > 0 ? 1 : 0) : n;
  report.build_cache_reuses = shareable && n > 0 ? n - 1 : 0;
  // Fold the per-row metric shards sequentially in grid index order:
  // deterministic and thread-count-independent, unlike any merge done
  // inside the parallel region would be.
  SimMetrics merged;
  for (const SweepRow& row : report.rows) merged.merge(row.metrics);
  merged.export_to(report.metrics);
  if (merged.enabled) {
    report.metrics.add_counter("sweep.scenarios", n);
    report.metrics.add_counter("sweep.build_cache.hits",
                               report.build_cache_reuses);
    report.metrics.add_counter("sweep.build_cache.misses", report.builds);
  }

  report.wall_seconds = elapsed_seconds(start);
  return report;
}

std::string SweepReport::to_csv() const {
  // Per-app column groups only appear for genuinely multi-tenant sweeps:
  // a single-app sweep (including single-[app] specs) keeps the classic
  // column set, byte-for-byte. Fault columns likewise only appear when
  // some row *configured* runtime faults — gating on configuration, not
  // outcome, keeps the schema a function of the spec (a faulty config
  // that happens to land zero failures still reports its columns).
  std::size_t max_apps = 0;
  bool faulty = false;
  bool grouped = false;
  bool slo = false;
  bool degraded = false;
  bool prioritized = false;
  bool churned = false;
  for (const SweepRow& row : rows) {
    max_apps = std::max(max_apps, row.apps.size());
    faulty = faulty || row.faults_enabled;
    grouped = grouped || row.groups_enabled;
    slo = slo || row.slo_enabled;
    degraded = degraded || row.degrade_enabled;
    prioritized = prioritized || row.priority_enabled;
    churned = churned || row.churn_enabled;
  }
  const bool per_app = max_apps >= 2;
  const std::size_t app_columns = 5 + (faulty ? 2 : 0) + (slo ? 2 : 0) +
                                  (degraded ? 2 : 0) + (prioritized ? 1 : 0) +
                                  (churned ? 1 : 0);

  CsvWriter writer;
  std::vector<std::string> header{"scenario"};
  for (const std::string& key : axis_keys) header.push_back(key);
  // `scheduler_name` is the resolved Scheduler::name() (e.g.
  // "bml(oracle-max)"), distinct from a possible `scheduler` axis column.
  for (const char* column :
       {"scheduler_name", "total_energy_j", "compute_energy_j",
        "reconfiguration_energy_j", "reconfigurations", "qos_violation_s",
        "served_fraction", "mean_power_w", "peak_machines"})
    header.emplace_back(column);
  if (faulty)
    for (const char* column :
         {"machine_failures", "availability", "lost_capacity_req_s"})
      header.emplace_back(column);
  if (grouped) header.emplace_back("group_strikes");
  if (slo)
    for (const char* column : {"spare_seconds", "spare_energy_j"})
      header.emplace_back(column);
  if (degraded)
    for (const char* column : {"overload_seconds", "penalty_lost_req_s"})
      header.emplace_back(column);
  if (prioritized) header.emplace_back("preemptions");
  if (churned)
    for (const char* column : {"arrivals", "departures"})
      header.emplace_back(column);
  if (per_app)
    for (std::size_t i = 0; i < max_apps; ++i) {
      const std::string prefix = "app" + std::to_string(i) + "_";
      for (const char* column :
           {"name", "compute_energy_j", "reconfiguration_energy_j",
            "qos_violation_s", "served_fraction"})
        header.push_back(prefix + column);
      if (faulty)
        for (const char* column : {"availability", "lost_capacity_req_s"})
          header.push_back(prefix + column);
      if (slo)
        for (const char* column : {"spare_seconds", "spare_energy_j"})
          header.push_back(prefix + column);
      if (degraded)
        for (const char* column : {"overload_seconds", "penalty_lost_req_s"})
          header.push_back(prefix + column);
      if (prioritized) header.push_back(prefix + "preempted_seconds");
      if (churned) header.push_back(prefix + "active_seconds");
    }
  writer.set_header(std::move(header));

  for (const SweepRow& row : rows) {
    std::vector<std::string> cells{row.scenario};
    for (const std::string& value : row.axis_values) cells.push_back(value);
    cells.push_back(row.scheduler);
    cells.push_back(csv_num(row.total_energy));
    cells.push_back(csv_num(row.compute_energy));
    cells.push_back(csv_num(row.reconfiguration_energy));
    cells.push_back(std::to_string(row.reconfigurations));
    cells.push_back(std::to_string(row.qos_violation_seconds));
    cells.push_back(csv_num(row.served_fraction));
    cells.push_back(csv_num(row.mean_power));
    cells.push_back(std::to_string(row.peak_machines));
    if (faulty) {
      cells.push_back(std::to_string(row.machine_failures));
      cells.push_back(csv_num(row.availability));
      cells.push_back(csv_num(row.lost_capacity));
    }
    if (grouped) cells.push_back(std::to_string(row.group_strikes));
    if (slo) {
      cells.push_back(std::to_string(row.spare_seconds));
      cells.push_back(csv_num(row.spare_energy));
    }
    if (degraded) {
      cells.push_back(std::to_string(row.overload_seconds));
      cells.push_back(csv_num(row.penalty_lost));
    }
    if (prioritized) cells.push_back(std::to_string(row.preemptions));
    if (churned) {
      cells.push_back(std::to_string(row.arrivals));
      cells.push_back(std::to_string(row.departures));
    }
    if (per_app)
      for (std::size_t i = 0; i < max_apps; ++i) {
        if (i < row.apps.size()) {
          const SweepAppRow& app = row.apps[i];
          cells.push_back(app.name);
          cells.push_back(csv_num(app.compute_energy));
          cells.push_back(csv_num(app.reconfiguration_energy));
          cells.push_back(std::to_string(app.qos_violation_seconds));
          cells.push_back(csv_num(app.served_fraction));
          if (faulty) {
            cells.push_back(csv_num(app.availability));
            cells.push_back(csv_num(app.lost_capacity));
          }
          if (slo) {
            cells.push_back(std::to_string(app.spare_seconds));
            cells.push_back(csv_num(app.spare_energy));
          }
          if (degraded) {
            cells.push_back(std::to_string(app.overload_seconds));
            cells.push_back(csv_num(app.penalty_lost));
          }
          if (prioritized)
            cells.push_back(std::to_string(app.preempted_seconds));
          if (churned) cells.push_back(std::to_string(app.active_seconds));
        } else {
          cells.insert(cells.end(), app_columns, "");
        }
      }
    writer.add_row(std::move(cells));
  }
  return writer.to_string();
}

std::string SweepReport::summary_table() const {
  AsciiTable table({"scenario", "energy (kWh)", "mean W", "reconfig",
                    "QoS viol (s)", "served %", "machines", "wall (ms)"});
  for (const SweepRow& row : rows)
    table.add_row({row.scenario, AsciiTable::num(joules_to_kwh(row.total_energy)),
                   AsciiTable::num(row.mean_power, 1),
                   std::to_string(row.reconfigurations),
                   std::to_string(row.qos_violation_seconds),
                   AsciiTable::num(100.0 * row.served_fraction, 3),
                   std::to_string(row.peak_machines),
                   AsciiTable::num(1000.0 * row.wall_seconds, 1)});
  return table.render();
}

std::string SweepReport::perf_report() const {
  AsciiTable table({"scenario", "wall (ms)", "spans", "ticks", "consults",
                    "decisions"});
  double scenario_wall = 0.0;
  for (const SweepRow& row : rows) {
    scenario_wall += row.wall_seconds;
    table.add_row({row.scenario, AsciiTable::num(1000.0 * row.wall_seconds, 1),
                   std::to_string(row.metrics.spans),
                   std::to_string(row.metrics.ticks),
                   std::to_string(row.metrics.scheduler_consults),
                   std::to_string(row.metrics.decisions_applied)});
  }
  std::ostringstream os;
  os << table.render();
  os << "builds: " << builds << "  cache reuses: " << build_cache_reuses
     << "  threads: " << threads << '\n';
  os << "wall: " << AsciiTable::num(1000.0 * wall_seconds, 1)
     << " ms sweep, " << AsciiTable::num(1000.0 * scenario_wall, 1)
     << " ms summed scenario work\n";
  return os.str();
}

}  // namespace bml
