#include "scenario/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "scenario/registry.hpp"
#include "util/csv.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace bml {

namespace {

double elapsed_seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

/// Numeric cell formatting shared with CsvWriter (12 significant digits).
std::string csv_num(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

ReqRate design_max_rate(const ScenarioSpec& spec, const LoadTrace& trace) {
  if (spec.design_max_rate == "trace-peak")
    return std::max(trace.peak(), 1.0);
  if (spec.design_max_rate == "default") return 0.0;
  return parse_double(spec.design_max_rate);
}

/// Applies one grid point to a copy of the base spec and names it after
/// its coordinates.
ScenarioSpec grid_point(const ScenarioSpec& base,
                        const std::vector<std::string>& values) {
  ScenarioSpec spec = base;
  spec.sweeps.clear();
  std::string suffix;
  for (std::size_t a = 0; a < base.sweeps.size(); ++a) {
    spec.set(base.sweeps[a].key, values[a]);
    suffix += (a == 0 ? "[" : ",") + base.sweeps[a].key + "=" + values[a];
  }
  if (!suffix.empty()) spec.name += suffix + "]";
  return spec;
}

/// Axis values of grid index `i`, first axis outermost.
std::vector<std::string> grid_values(const ScenarioSpec& spec,
                                     std::size_t i) {
  std::vector<std::string> values(spec.sweeps.size());
  std::size_t stride = 1;
  for (std::size_t a = spec.sweeps.size(); a-- > 0;) {
    const std::vector<std::string>& axis = spec.sweeps[a].values;
    values[a] = axis[(i / stride) % axis.size()];
    stride *= axis.size();
  }
  return values;
}

std::size_t grid_size(const ScenarioSpec& spec) {
  std::size_t n = 1;
  for (const SweepAxis& axis : spec.sweeps) n *= axis.values.size();
  return n;
}

}  // namespace

namespace {

ScenarioResult run_scenario_impl(const ScenarioSpec& spec,
                                 const LoadTrace* shared_trace) {
  const auto start = std::chrono::steady_clock::now();
  ScenarioResult result;
  result.spec = spec;

  const Catalog catalog = make_catalog(spec.catalog, spec.catalog_params);
  const LoadTrace own_trace =
      shared_trace ? LoadTrace{}
                   : make_trace(spec.trace, spec.trace_params, spec.seed);
  const LoadTrace& trace = shared_trace ? *shared_trace : own_trace;

  BmlDesignOptions design_options;
  design_options.max_rate = design_max_rate(spec, trace);
  design_options.solver = spec.design_solver == "exact-dp"
                              ? SolverKind::kExactDp
                              : SolverKind::kGreedyThreshold;
  auto design =
      std::make_shared<BmlDesign>(BmlDesign::build(catalog, design_options));

  const QosClass qos =
      spec.qos == "critical" ? QosClass::kCritical : QosClass::kTolerant;
  std::shared_ptr<Predictor> predictor =
      make_predictor(spec.predictor, spec.predictor_params, spec.seed);
  std::unique_ptr<Scheduler> scheduler = make_scheduler(
      spec.scheduler, spec.scheduler_params, design, std::move(predictor), qos);

  SimulatorOptions options;
  options.graceful_off = spec.graceful_off;
  options.event_driven = spec.event_driven;
  options.faults.boot_time_jitter = spec.boot_time_jitter;
  options.faults.boot_failure_prob = spec.boot_failure_prob;
  options.faults.seed = spec.seed;

  const Simulator simulator(design->candidates(), options);
  result.sim = simulator.run(*scheduler, trace);
  result.trace_duration = trace.duration();
  result.wall_seconds = elapsed_seconds(start);
  return result;
}

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  return run_scenario_impl(spec, nullptr);
}

ScenarioResult run_scenario(const ScenarioSpec& spec,
                            const LoadTrace& trace) {
  return run_scenario_impl(spec, &trace);
}

std::vector<ScenarioSpec> expand_sweep(const ScenarioSpec& spec) {
  const std::size_t n = grid_size(spec);
  std::vector<ScenarioSpec> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(grid_point(spec, grid_values(spec, i)));
  return out;
}

SweepReport run_sweep(const ScenarioSpec& spec, const SweepOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  SweepReport report;
  report.threads =
      options.threads == 0 ? default_parallelism() : options.threads;
  for (const SweepAxis& axis : spec.sweeps) {
    if (options.shared_trace &&
        (axis.key == "trace" || axis.key.starts_with("trace.")))
      throw std::runtime_error(
          "run_sweep: axis '" + axis.key +
          "' conflicts with the shared trace (every scenario replays it)");
    report.axis_keys.push_back(axis.key);
  }

  const std::size_t n = grid_size(spec);
  report.rows.resize(n);
  if (options.keep_results) report.results.resize(n);

  parallel_for(
      n,
      [&](std::size_t i) {
        const std::vector<std::string> values = grid_values(spec, i);
        ScenarioResult result =
            run_scenario_impl(grid_point(spec, values), options.shared_trace);

        SweepRow& row = report.rows[i];
        row.scenario = result.spec.name;
        row.axis_values = values;
        row.scheduler = result.sim.scheduler_name;
        row.total_energy = result.sim.total_energy();
        row.compute_energy = result.sim.compute_energy;
        row.reconfiguration_energy = result.sim.reconfiguration_energy;
        row.reconfigurations = result.sim.reconfigurations;
        row.qos_violation_seconds = result.sim.qos.violation_seconds;
        row.served_fraction = result.sim.qos.served_fraction();
        row.mean_power = result.trace_duration > 0.0
                             ? result.sim.total_energy() / result.trace_duration
                             : 0.0;
        row.peak_machines = result.sim.peak_machines;
        row.wall_seconds = result.wall_seconds;
        if (options.keep_results) report.results[i] = std::move(result);
      },
      report.threads);

  report.wall_seconds = elapsed_seconds(start);
  return report;
}

std::string SweepReport::to_csv() const {
  CsvWriter writer;
  std::vector<std::string> header{"scenario"};
  for (const std::string& key : axis_keys) header.push_back(key);
  // `scheduler_name` is the resolved Scheduler::name() (e.g.
  // "bml(oracle-max)"), distinct from a possible `scheduler` axis column.
  for (const char* column :
       {"scheduler_name", "total_energy_j", "compute_energy_j",
        "reconfiguration_energy_j", "reconfigurations", "qos_violation_s",
        "served_fraction", "mean_power_w", "peak_machines"})
    header.emplace_back(column);
  writer.set_header(std::move(header));

  for (const SweepRow& row : rows) {
    std::vector<std::string> cells{row.scenario};
    for (const std::string& value : row.axis_values) cells.push_back(value);
    cells.push_back(row.scheduler);
    cells.push_back(csv_num(row.total_energy));
    cells.push_back(csv_num(row.compute_energy));
    cells.push_back(csv_num(row.reconfiguration_energy));
    cells.push_back(std::to_string(row.reconfigurations));
    cells.push_back(std::to_string(row.qos_violation_seconds));
    cells.push_back(csv_num(row.served_fraction));
    cells.push_back(csv_num(row.mean_power));
    cells.push_back(std::to_string(row.peak_machines));
    writer.add_row(std::move(cells));
  }
  return writer.to_string();
}

std::string SweepReport::summary_table() const {
  AsciiTable table({"scenario", "energy (kWh)", "mean W", "reconfig",
                    "QoS viol (s)", "served %", "machines", "wall (ms)"});
  for (const SweepRow& row : rows)
    table.add_row({row.scenario, AsciiTable::num(joules_to_kwh(row.total_energy)),
                   AsciiTable::num(row.mean_power, 1),
                   std::to_string(row.reconfigurations),
                   std::to_string(row.qos_violation_seconds),
                   AsciiTable::num(100.0 * row.served_fraction, 3),
                   std::to_string(row.peak_machines),
                   AsciiTable::num(1000.0 * row.wall_seconds, 1)});
  return table.render();
}

}  // namespace bml
