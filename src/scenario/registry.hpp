// The component registry: name -> factory for every catalog, trace
// generator, scheduler, and predictor the library ships, so a ScenarioSpec
// is fully data-driven — composing a new experiment is editing text, not
// writing a C++ main.
//
// Registered names and their parameters (defaults in parentheses):
//
//   catalogs
//     real           the five Table I machines
//     illustrative   the A/B/C/D architectures of Fig. 1
//     file           file=<path to catalog CSV>
//
//   traces — every generator takes seed (= spec seed) where noise applies
//     constant       rate(100), duration(3600)
//     step           segments, as rate:duration;rate:duration;...
//     diurnal        days(1), peak(1000), trough_fraction(0.25),
//                    peak_hour(18), noise(0.02)
//     flash_crowd    base(50), burst_peak(2000), duration(3600),
//                    burst_start(1200), ramp(120), hold(600)
//     worldcup_like  days(87), peak(5200) and every other WorldCupOptions
//                    knob under its field name; match_hours as a
//                    ;-separated list
//     file           file=<path>, origin(0) — CSV or WC98 via load_any
//
//   predictors — any of them takes error_sigma(0), error_bias(0),
//   error_seed(= spec seed); a non-zero sigma/bias wraps the predictor in
//   ErrorInjectingPredictor
//     oracle-max     the paper's emulated look-ahead window
//     last-value
//     moving-max     window(378)
//     ewma           alpha(0.3), headroom(1.2)
//     linear-trend   window(600)
//     seasonal       period(86400), headroom(1.1)
//
//   schedulers
//     bml            window(0 = 2x longest On); uses the spec predictor
//                    and qos class
//     cost-aware     window(0), payback_window(0); uses the spec predictor
//     reactive       headroom(1)
//     hysteresis     hold(300), window(0) — BML wrapped in scale-down
//                    damping; uses the spec predictor and qos class
//     static-max     UpperBound Global: constant homogeneous Big fleet
//     per-day        UpperBound PerDay: Big fleet resized at midnight
//
// Multi-tenant specs (`[app]` sections, scenario/scenario_spec.hpp) build
// one trace + predictor + scheduler stack per application through these
// same factories; the sweep runner turns each section into a Workload
// (app/workload.hpp) over the shared design.
//
// Fault keys (sim/cluster.hpp FaultModel; all sweepable):
//   faults.boot_time_jitter(0)   boot-duration noise sigma
//   faults.boot_failure_prob(0)  probability a boot fails and retries
//   faults.mtbf(0)               mean seconds between runtime failure
//                                strikes per fault domain per arch
//                                (0 = no runtime faults)
//   faults.mttr(0)               mean repair seconds (min 1 s)
//   faults.groups(0)             racks per fault domain for correlated
//                                strikes (with faults.group_mtbf > 0 a
//                                rack strike fells its whole stripe of
//                                On machines at once)
//   faults.group_mtbf(0)         mean seconds between rack strikes
//   faults.group_mttr(0)         mean rack-strike repair seconds
//   faults.crews(0)              concurrent repair crews (0 = unlimited;
//                                excess repairs queue FIFO)
//   faults.seed(= spec seed)     fault-stream seed override
//   app<i>.fault_domain("")      groups [app] sections into shared fault
//                                domains; empty = the app's own private
//                                domain (per-app failures out of the box)
// SLO keys (availability feedback; all sweepable):
//   slo.window(86400)            trailing availability window (whole s)
//   slo.availability(0)          per-app target in [0, 1] (0 = off);
//                                top-level for classic single-app specs,
//                                app<i>.slo.availability per section
//   slo.spare(0.25)              spare-capacity fraction provisioned
//                                while the target is violated (> 0)
// Degraded-mode serving keys (sim/cluster.hpp DegradeModel; sweepable):
//   degrade.overload_factor(0)   spill-over the On fleet absorbs above its
//                                rated capacity, as a fraction of that
//                                capacity (0 = spill-over is dropped, the
//                                classic behaviour)
//   degrade.penalty(0.5)         contention loss per absorbed req/s, in
//                                [0, 1]: each spill-over req/s serves only
//                                (1 - penalty) effectively
// Priority keys (app/workload.hpp; sweepable per section):
//   priority(0)                  integer class >= 0, higher = more
//                                important; top-level for classic
//                                single-app specs (rejected with
//                                coordinator = sum, where it cannot rank
//                                anything), app<i>.priority per section.
//                                With at least two differing classes the
//                                partitioned coordinator trims
//                                lowest-priority apps first, SLO spares go
//                                high-priority-first, and strikes preempt
//                                low-priority capacity to backfill
//                                higher classes (sim/simulator.hpp)
// Runtime faults make sweeps report machine_failures / availability /
// lost-capacity columns (cluster-wide and per app), correlated strikes
// add group_strikes, and SLO targets add spare_seconds / spare_energy_j;
// a configured degrade model adds overload_seconds / penalty_lost_req_s
// and differing priorities add preemptions / preempted_seconds (see
// scenario/sweep.hpp).
// Observability keys (obs/metrics.hpp, obs/trace_export.hpp; sweepable):
//   obs.metrics(false)           collect simulator self-metrics (span-end
//                                causes, span lengths, scheduler consults;
//                                results are bit-identical on or off)
//   obs.trace(false)             record the Chrome trace-event timeline
//                                (forces the per-second reference path,
//                                like event logging)
//   obs.sample(60)               timeline counter-sample period (s, >= 1)
// None of these alter the CSV schema or any CSV value.
//
// Build sharing across sweeps: every component above is rebuilt per
// scenario *unless* none of the sweep axes name a build input — `catalog`
// / `catalog.*`, `design.*`, `seed`, or any trace field (`trace`,
// `trace.*`, `app<i>.trace*`). In that case the sweep runner builds the
// catalog, the traces, their compiled RLE forms (sim/compiled_trace.hpp),
// the BmlDesign — including the CombinationTable and its
// DecisionThresholds (core/decision_thresholds.hpp, the sorted load
// cut-points behind decision-granular fast-path spans) — and the
// DispatchPlan exactly once, sharing the immutable results across all
// grid points and worker threads (asserted by the CombinationTable
// build-count probe in tests/test_scenario.cpp). Schedulers and
// predictors are stateful and always constructed per scenario. The
// `faults.*` and `slo.*` keys are runtime-only (seed-bearing, but
// consumed by the simulator, never by the build), so fault and SLO axes
// keep the shared build; `obs.*`, `degrade.*` and `priority` keys
// likewise.
//
// Unknown component names and unknown or malformed parameters throw
// std::runtime_error naming the component, the offending key, and the
// accepted names.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/catalog.hpp"
#include "core/bml_design.hpp"
#include "predict/predictor.hpp"
#include "scenario/scenario_spec.hpp"
#include "sim/qos.hpp"
#include "sim/scheduler.hpp"
#include "trace/trace.hpp"

namespace bml {

/// One registry entry for `bmlsim list` style reporting.
struct ComponentInfo {
  std::string name;
  std::string summary;
};

[[nodiscard]] std::vector<ComponentInfo> catalog_components();
[[nodiscard]] std::vector<ComponentInfo> trace_components();
[[nodiscard]] std::vector<ComponentInfo> predictor_components();
[[nodiscard]] std::vector<ComponentInfo> scheduler_components();

/// Builds the named catalog. Throws std::runtime_error on unknown names or
/// parameters.
[[nodiscard]] Catalog make_catalog(
    const std::string& name,
    const std::map<std::string, std::string>& params);

/// Builds the named trace; generators with randomness default their seed
/// to `seed`. Every generator additionally accepts the composable
/// post-transforms `seasonal.diurnal` / `seasonal.weekly` (multiplicative
/// cosine envelopes, amplitude in [0, 1], optional `seasonal.peak_hour`)
/// and `spikes.interarrival` (heavy-tailed Pareto spike overlay with
/// `spikes.magnitude` / `spikes.alpha` / `spikes.duration` /
/// `spikes.seed`, the seed defaulting to `seed`).
[[nodiscard]] LoadTrace make_trace(
    const std::string& name, const std::map<std::string, std::string>& params,
    std::uint64_t seed);

/// Builds the named predictor (possibly error-wrapped, see file comment).
[[nodiscard]] std::shared_ptr<Predictor> make_predictor(
    const std::string& name, const std::map<std::string, std::string>& params,
    std::uint64_t seed);

/// Builds the named scheduler over `design`; `predictor` feeds the
/// prediction-driven ones and is ignored by the upper-bound baselines.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    const std::string& name, const std::map<std::string, std::string>& params,
    std::shared_ptr<const BmlDesign> design,
    std::shared_ptr<Predictor> predictor, QosClass qos);

}  // namespace bml
