// google-benchmark microbenchmarks for the library's hot paths: the
// combination solvers, load dispatch (reference vs compiled plan), the
// threshold computation, the oracle predictor, end-to-end trace replay
// (event-driven fast path vs per-second reference), and scenario-engine
// sweep throughput at 1 and N worker threads.
//
// The binary overrides global operator new/delete with a counting
// allocator so benchmarks can report an `allocs_per_iter` counter;
// BM_Dispatch (the DispatchPlan path) must report 0.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "core/bml_design.hpp"
#include "core/dispatch_plan.hpp"
#include "predict/predictor.hpp"
#include "scenario/sweep.hpp"
#include "sched/bml_scheduler.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"

namespace {

std::atomic<std::size_t> g_allocation_count{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace bml;

const BmlDesign& design() {
  static const BmlDesign d = BmlDesign::build(real_catalog());
  return d;
}

/// Records the number of heap allocations per iteration as a counter.
class AllocationScope {
 public:
  explicit AllocationScope(benchmark::State& state)
      : state_(state),
        start_(g_allocation_count.load(std::memory_order_relaxed)) {}
  ~AllocationScope() {
    const std::size_t total =
        g_allocation_count.load(std::memory_order_relaxed) - start_;
    state_.counters["allocs_per_iter"] = benchmark::Counter(
        static_cast<double>(total) /
        static_cast<double>(state_.iterations() ? state_.iterations() : 1));
  }

 private:
  benchmark::State& state_;
  std::size_t start_;
};

void BM_GreedySolve(benchmark::State& state) {
  const auto& d = design();
  const GreedyThresholdSolver solver(d.candidates(), d.thresholds());
  double rate = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(rate));
    rate = rate >= 5000.0 ? 1.0 : rate + 37.0;
  }
}
BENCHMARK(BM_GreedySolve);

void BM_ExactDpBuild(benchmark::State& state) {
  const auto& d = design();
  for (auto _ : state) {
    const ExactDpSolver solver(d.candidates(),
                               static_cast<double>(state.range(0)));
    benchmark::DoNotOptimize(&solver);
  }
}
BENCHMARK(BM_ExactDpBuild)->Arg(1000)->Arg(5000);

void BM_TableLookup(benchmark::State& state) {
  const auto& d = design();
  double rate = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.ideal_combination(rate));
    rate = rate >= 5000.0 ? 0.0 : rate + 13.0;
  }
}
BENCHMARK(BM_TableLookup);

// Allocation-free dispatch through the compiled plan: the simulator /
// solver hot path. allocs_per_iter must be 0.
void BM_Dispatch(benchmark::State& state) {
  const auto& d = design();
  const DispatchPlan plan(d.candidates());
  Combination combo = d.ideal_combination(2500.0);
  combo.resize(d.candidates().size());
  DispatchResult scratch;
  plan.dispatch_into(combo.counts(), 0.0, scratch);  // warm the scratch
  double load = 0.0;
  AllocationScope allocations(state);
  for (auto _ : state) {
    plan.dispatch_into(combo.counts(), load, scratch);
    benchmark::DoNotOptimize(scratch.power);
    load = load >= 2500.0 ? 0.0 : load + 11.0;
  }
}
BENCHMARK(BM_Dispatch);

// Power-only query, the innermost call of the DP solvers and the
// event-driven simulator.
void BM_DispatchPlanPowerAt(benchmark::State& state) {
  const auto& d = design();
  const DispatchPlan plan(d.candidates());
  Combination combo = d.ideal_combination(2500.0);
  combo.resize(d.candidates().size());
  double load = 0.0;
  AllocationScope allocations(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.power_at(combo.counts(), load));
    load = load >= 2500.0 ? 0.0 : load + 11.0;
  }
}
BENCHMARK(BM_DispatchPlanPowerAt);

// The legacy per-call dispatch(), kept as the baseline the plan is
// measured against (it re-sorts and allocates every call).
void BM_DispatchReference(benchmark::State& state) {
  const auto& d = design();
  const Combination combo = d.ideal_combination(2500.0);
  double load = 0.0;
  AllocationScope allocations(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dispatch(d.candidates(), combo, load));
    load = load >= 2500.0 ? 0.0 : load + 11.0;
  }
}
BENCHMARK(BM_DispatchReference);

void BM_ThresholdComputation(benchmark::State& state) {
  const Catalog catalog = real_catalog();
  for (auto _ : state) {
    benchmark::DoNotOptimize(BmlDesign::build(catalog, {.build_table = false}));
  }
}
BENCHMARK(BM_ThresholdComputation);

void BM_OraclePredictorQuery(benchmark::State& state) {
  DiurnalOptions options;
  options.noise = 0.05;
  const LoadTrace trace = diurnal_trace(options, 1);
  OracleMaxPredictor oracle;
  (void)oracle.predict(trace, 0, 378.0);  // build the cache once
  TimePoint t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.predict(trace, t, 378.0));
    t = (t + 17) % 86400;
  }
}
BENCHMARK(BM_OraclePredictorQuery);

void BM_SimulatorDay(benchmark::State& state) {
  auto d = std::make_shared<BmlDesign>(BmlDesign::build(real_catalog()));
  WorldCupOptions options;
  options.days = 1;
  options.peak = 3000.0;
  const LoadTrace trace = worldcup_like_trace(options);
  const Simulator simulator(d->candidates());
  for (auto _ : state) {
    BmlScheduler scheduler(d, std::make_shared<OracleMaxPredictor>());
    benchmark::DoNotOptimize(simulator.run(scheduler, trace));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.size()));
}
BENCHMARK(BM_SimulatorDay)->Unit(benchmark::kMillisecond);

// Three colocated applications (diurnal + worldcup + steady) replayed for
// one day through the multi-workload layer: the per-app attribution and
// coordinator-merge overhead on top of BM_SimulatorDay. Traces and
// schedulers are built once and passed as non-owning views, so the loop
// times the replay itself (the oracle schedulers carry only the
// predictor's per-trace cache, as in the replay_week benchmarks).
// items_per_second counts app-trace-seconds (3 x 86400 per iteration).
void BM_MultiAppSimulatorDay(benchmark::State& state) {
  auto d = std::make_shared<BmlDesign>(BmlDesign::build(real_catalog()));
  DiurnalOptions diurnal;
  diurnal.peak = 1500.0;
  diurnal.noise = 0.0;
  WorldCupOptions worldcup;
  worldcup.days = 1;
  worldcup.peak = 3000.0;
  const LoadTrace traces[] = {diurnal_trace(diurnal, 1),
                              worldcup_like_trace(worldcup),
                              constant_trace(400.0, 86'400.0)};
  const std::string names[] = {"web", "worldcup", "batch"};
  const Simulator simulator(d->candidates());
  std::vector<std::unique_ptr<BmlScheduler>> schedulers;
  std::vector<Simulator::WorkloadView> views;
  std::int64_t seconds_per_iter = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    schedulers.push_back(std::make_unique<BmlScheduler>(
        d, std::make_shared<OracleMaxPredictor>()));
    views.push_back(Simulator::WorkloadView{&names[i], &traces[i],
                                            schedulers[i].get(),
                                            QosClass::kTolerant, 1.0});
    seconds_per_iter += static_cast<std::int64_t>(traces[i].size());
  }
  benchmark::DoNotOptimize(simulator.run(views));  // warm predictor caches
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.run(views));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          seconds_per_iter);
}
BENCHMARK(BM_MultiAppSimulatorDay)->Unit(benchmark::kMillisecond);

// One simulated day across a 1,000-app colocated fleet stamped out of
// four tenant archetypes, replicas sharing one trace + compiled form per
// archetype exactly as the scenario engine's `replicas` dedup does. This
// is the regime of the fused k-way merge and the fleet-mode consult
// cache (k >= 4); items_per_second counts app-trace-seconds
// (1000 x 86400 per iteration).
void BM_FleetScaleDay(benchmark::State& state) {
  auto d = std::make_shared<BmlDesign>(BmlDesign::build(real_catalog()));
  constexpr std::size_t kApps = 1000;
  constexpr std::size_t kArchetypes = 4;
  DiurnalOptions diurnal;
  diurnal.peak = 1500.0;
  diurnal.noise = 0.0;
  WorldCupOptions worldcup;
  worldcup.days = 1;
  worldcup.peak = 3000.0;
  const LoadTrace traces[kArchetypes] = {
      diurnal_trace(diurnal, 1), worldcup_like_trace(worldcup),
      constant_trace(400.0, 86'400.0),
      step_trace({{300.0, 43'200.0}, {1000.0, 43'200.0}})};
  const CompiledTrace compiled[kArchetypes] = {
      CompiledTrace(traces[0]), CompiledTrace(traces[1]),
      CompiledTrace(traces[2]), CompiledTrace(traces[3])};
  // One predictor per archetype: replicas of an archetype replay the same
  // trace, so the window-max cache is built once and shared, mirroring
  // the deduplicated scenario build.
  std::shared_ptr<OracleMaxPredictor> predictors[kArchetypes];
  for (auto& p : predictors) p = std::make_shared<OracleMaxPredictor>();
  const Simulator simulator(d->candidates());
  std::vector<std::string> names(kApps);
  std::vector<std::unique_ptr<BmlScheduler>> schedulers;
  std::vector<Simulator::WorkloadView> views;
  schedulers.reserve(kApps);
  views.reserve(kApps);
  std::int64_t seconds_per_iter = 0;
  for (std::size_t i = 0; i < kApps; ++i) {
    const std::size_t a = i % kArchetypes;
    names[i] = "app" + std::to_string(i);
    schedulers.push_back(std::make_unique<BmlScheduler>(d, predictors[a]));
    views.push_back(Simulator::WorkloadView{&names[i], &traces[a],
                                            schedulers.back().get(),
                                            QosClass::kTolerant, 1.0,
                                            &compiled[a]});
    seconds_per_iter += static_cast<std::int64_t>(traces[a].size());
  }
  benchmark::DoNotOptimize(simulator.run(views));  // warm predictor caches
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.run(views));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          seconds_per_iter);
}
BENCHMARK(BM_FleetScaleDay)->Unit(benchmark::kMillisecond);

// BM_FleetScaleDay with tenant churn: one quarter of the 1000 apps are
// visitors arriving in hourly onboarding waves and staying six hours
// (dozens of lifecycle events, each re-partitioning the coordinator and
// re-entering the fused k-way merge with a different active subset — and
// each wave moving ~60 tenants' capacity at once). CI gates this at
// <= 2x BM_FleetScaleDay: lifecycle bookkeeping must stay a bounded tax
// on the fleet fast path.
void BM_FleetScaleChurnDay(benchmark::State& state) {
  auto d = std::make_shared<BmlDesign>(BmlDesign::build(real_catalog()));
  constexpr std::size_t kApps = 1000;
  constexpr std::size_t kArchetypes = 4;
  DiurnalOptions diurnal;
  diurnal.peak = 1500.0;
  diurnal.noise = 0.0;
  WorldCupOptions worldcup;
  worldcup.days = 1;
  worldcup.peak = 3000.0;
  const LoadTrace traces[kArchetypes] = {
      diurnal_trace(diurnal, 1), worldcup_like_trace(worldcup),
      constant_trace(400.0, 86'400.0),
      step_trace({{300.0, 43'200.0}, {1000.0, 43'200.0}})};
  const CompiledTrace compiled[kArchetypes] = {
      CompiledTrace(traces[0]), CompiledTrace(traces[1]),
      CompiledTrace(traces[2]), CompiledTrace(traces[3])};
  std::shared_ptr<OracleMaxPredictor> predictors[kArchetypes];
  for (auto& p : predictors) p = std::make_shared<OracleMaxPredictor>();
  const Simulator simulator(d->candidates());
  std::vector<std::string> names(kApps);
  std::vector<std::unique_ptr<BmlScheduler>> schedulers;
  std::vector<Simulator::WorkloadView> views;
  schedulers.reserve(kApps);
  views.reserve(kApps);
  std::int64_t seconds_per_iter = 0;
  for (std::size_t i = 0; i < kApps; ++i) {
    const std::size_t a = i % kArchetypes;
    names[i] = "app" + std::to_string(i);
    schedulers.push_back(std::make_unique<BmlScheduler>(d, predictors[a]));
    Simulator::WorkloadView view{&names[i], &traces[a],
                                 schedulers.back().get(),
                                 QosClass::kTolerant, 1.0, &compiled[a]};
    if (i % 4 == 3) {
      // Hourly onboarding waves across the first half of the day, each
      // visitor resident for six hours.
      view.arrive = (1 + static_cast<TimePoint>((i / 4) % 12)) * 3600;
      view.depart = view.arrive + 6 * 3600;
    }
    views.push_back(view);
    seconds_per_iter += static_cast<std::int64_t>(traces[a].size());
  }
  benchmark::DoNotOptimize(simulator.run(views));  // warm predictor caches
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.run(views));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          seconds_per_iter);
}
BENCHMARK(BM_FleetScaleChurnDay)->Unit(benchmark::kMillisecond);

/// Seven days of a steady (piecewise-constant) load: a 24-level staircase
/// per day, repeated — the shape of a planned-capacity workload. This is
/// the scenario where run-length batching shines.
LoadTrace steady_week_trace() {
  std::vector<StepSegment> segments;
  for (int day = 0; day < 7; ++day)
    for (int hour = 0; hour < 24; ++hour) {
      const double level =
          250.0 + 2250.0 * (hour < 12 ? hour : 24 - hour) / 12.0;
      segments.push_back({level, 3600.0});
    }
  return step_trace(segments);
}

/// Seven days of a per-second-varying World-Cup-style replay: Poisson
/// arrivals change the rate (almost) every second, the regime of the
/// paper's real recorded workloads — and the trace-granularity limiter the
/// decision-granular simulator removes. Peak sized so the BML fleet
/// actually reconfigures over the week.
LoadTrace noisy_week_trace() {
  WorldCupOptions options;
  options.days = 7;
  options.peak = 3000.0;
  options.tournament_start_day = 2;
  options.tournament_end_day = 6;
  return worldcup_like_trace(options);
}

void replay_week(benchmark::State& state, const LoadTrace& trace,
                 bool event_driven, SimulatorOptions options = {}) {
  auto d = std::make_shared<BmlDesign>(BmlDesign::build(real_catalog()));
  options.event_driven = event_driven;
  const Simulator simulator(d->candidates(), options);
  // The oracle BML scheduler carries no cross-run state besides the
  // predictor's per-trace window-max cache; constructing it once (and
  // warming the cache with one run) keeps the measurement on the replay
  // itself rather than on the O(trace) cache build. The trace is likewise
  // compiled once and shared across runs via the view, as the sweep
  // runner does across a grid (the per-second reference ignores it).
  BmlScheduler scheduler(d, std::make_shared<OracleMaxPredictor>());
  const CompiledTrace compiled(trace);
  const std::string name = "app";
  const std::vector<Simulator::WorkloadView> views{Simulator::WorkloadView{
      &name, &trace, &scheduler, QosClass::kTolerant, 1.0, &compiled}};
  benchmark::DoNotOptimize(simulator.run(views));
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.run(views));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.size()));
}

// Event-driven fast path vs per-second reference on the same 7-day steady
// trace; the items_per_second ratio is the replay speedup.
void BM_SimulatorWeekSteadyEventDriven(benchmark::State& state) {
  replay_week(state, steady_week_trace(), /*event_driven=*/true);
}
BENCHMARK(BM_SimulatorWeekSteadyEventDriven)->Unit(benchmark::kMillisecond);

void BM_SimulatorWeekSteadyReference(benchmark::State& state) {
  replay_week(state, steady_week_trace(), /*event_driven=*/false);
}
BENCHMARK(BM_SimulatorWeekSteadyReference)->Unit(benchmark::kMillisecond);

// The same pair on the noisy 7-day WC98-style replay — the benchmark that
// tracks the decision-granular batching this library optimises for (CI
// fails when the event-driven path drops below 10x the reference here).
void BM_SimulatorWeekNoisyEventDriven(benchmark::State& state) {
  replay_week(state, noisy_week_trace(), /*event_driven=*/true);
}
BENCHMARK(BM_SimulatorWeekNoisyEventDriven)->Unit(benchmark::kMillisecond);

void BM_SimulatorWeekNoisyReference(benchmark::State& state) {
  replay_week(state, noisy_week_trace(), /*event_driven=*/false);
}
BENCHMARK(BM_SimulatorWeekNoisyReference)->Unit(benchmark::kMillisecond);

// The steady week with an active runtime fault model (machine crashes
// roughly every couple of hours, ~15 min mean repairs): every failure and
// repair is a first-class fast-path event plus a self-healing
// reconfiguration, so this tracks the span-batching overhead of the
// availability subsystem against BM_SimulatorWeekSteadyEventDriven.
void BM_SimulatorWeekFaulty(benchmark::State& state) {
  SimulatorOptions options;
  options.faults.mtbf = 7200.0;
  options.faults.mttr = 900.0;
  options.faults.seed = 7;
  replay_week(state, steady_week_trace(), /*event_driven=*/true, options);
}
BENCHMARK(BM_SimulatorWeekFaulty)->Unit(benchmark::kMillisecond);

// The steady week under the full resilience stack: correlated rack
// strikes (each felling a whole stripe of the fleet in one event) on top
// of per-machine faults, with a crew-limited repair queue stretching
// outages. Group events bound fast-path spans exactly like machine
// transitions; CI holds the event-driven path to >= 10x the reference
// loop on this pair.
SimulatorOptions correlated_fault_options() {
  SimulatorOptions options;
  options.faults.mtbf = 7200.0;
  options.faults.mttr = 900.0;
  options.faults.groups = 2;
  options.faults.group_mtbf = 14400.0;
  options.faults.group_mttr = 1200.0;
  options.faults.crews = 2;
  options.faults.seed = 7;
  return options;
}

void BM_SimulatorWeekCorrelatedFaultsEventDriven(benchmark::State& state) {
  replay_week(state, steady_week_trace(), /*event_driven=*/true,
              correlated_fault_options());
}
BENCHMARK(BM_SimulatorWeekCorrelatedFaultsEventDriven)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatorWeekCorrelatedFaultsReference(benchmark::State& state) {
  replay_week(state, steady_week_trace(), /*event_driven=*/false,
              correlated_fault_options());
}
BENCHMARK(BM_SimulatorWeekCorrelatedFaultsReference)
    ->Unit(benchmark::kMillisecond);

// Scenario-engine sweep throughput: an 8-point grid (scheduler x predictor
// x QoS) over a short step trace, at 1 worker vs hardware concurrency.
// items_per_second is scenarios/sec, the number that bounds how large a
// campaign bmlsim can expand per CPU-hour.
void BM_SweepThroughput(benchmark::State& state) {
  ScenarioSpec spec;
  spec.name = "bench";
  spec.trace = "step";
  spec.trace_params["segments"] = "200:900;2100:900;100:900";
  spec.sweeps.push_back(SweepAxis{"scheduler", {"bml", "reactive"}});
  spec.sweeps.push_back(SweepAxis{"predictor", {"oracle-max", "moving-max"}});
  spec.sweeps.push_back(SweepAxis{"qos", {"tolerant", "critical"}});
  SweepOptions options;
  options.threads = static_cast<unsigned>(state.range(0));
  std::size_t scenarios = 0;
  for (auto _ : state) {
    const SweepReport report = run_sweep(spec, options);
    scenarios += report.rows.size();
    benchmark::DoNotOptimize(report.rows.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(scenarios));
}
BENCHMARK(BM_SweepThroughput)
    ->Arg(1)
    ->Arg(0)  // 0 = hardware concurrency
    ->Unit(benchmark::kMillisecond);

// Sweep throughput when the shared-build cache engages: none of the axes
// touch catalog / design / trace / seed inputs, so the CombinationTable,
// DispatchPlan and compiled trace are built once for the whole 12-point
// grid instead of once per scenario. A noisy day-long trace makes the
// per-scenario build the dominant cost the cache removes.
void BM_SweepSharedBuildThroughput(benchmark::State& state) {
  ScenarioSpec spec;
  spec.name = "bench-shared";
  spec.trace = "worldcup_like";
  spec.trace_params["days"] = "1";
  spec.trace_params["peak"] = "2500";
  spec.trace_params["tournament_start_day"] = "0";
  spec.trace_params["tournament_end_day"] = "1";
  spec.sweeps.push_back(SweepAxis{"scheduler", {"bml", "reactive", "per-day"}});
  spec.sweeps.push_back(SweepAxis{"predictor", {"oracle-max", "moving-max"}});
  spec.sweeps.push_back(SweepAxis{"qos", {"tolerant", "critical"}});
  SweepOptions options;
  options.threads = 1;
  std::size_t scenarios = 0;
  for (auto _ : state) {
    const SweepReport report = run_sweep(spec, options);
    scenarios += report.rows.size();
    benchmark::DoNotOptimize(report.rows.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(scenarios));
}
BENCHMARK(BM_SweepSharedBuildThroughput)->Unit(benchmark::kMillisecond);

void BM_WorldCupTraceGeneration(benchmark::State& state) {
  WorldCupOptions options;
  options.days = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(worldcup_like_trace(options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(options.days) * 86400);
}
BENCHMARK(BM_WorldCupTraceGeneration)->Arg(1)->Arg(7)
    ->Unit(benchmark::kMillisecond);

// How *this binary* was compiled. google-benchmark's own
// `library_build_type` context key reports how the (system) benchmark
// library was built, which says nothing about the code under test —
// bench/run_bench.sh asserts on this key instead before recording
// BENCH_micro.json.
#if defined(NDEBUG) && (defined(__OPTIMIZE__) || defined(_MSC_VER))
constexpr const char kBmlBuildType[] = "release";
#else
constexpr const char kBmlBuildType[] = "debug";
#endif

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("bml_build_type", kBmlBuildType);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
