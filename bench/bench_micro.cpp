// google-benchmark microbenchmarks for the library's hot paths: the
// combination solvers, load dispatch, threshold computation, the oracle
// predictor, and the end-to-end simulator step rate.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/bml_design.hpp"
#include "predict/predictor.hpp"
#include "sched/bml_scheduler.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace bml;

const BmlDesign& design() {
  static const BmlDesign d = BmlDesign::build(real_catalog());
  return d;
}

void BM_GreedySolve(benchmark::State& state) {
  const auto& d = design();
  const GreedyThresholdSolver solver(d.candidates(), d.thresholds());
  double rate = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(rate));
    rate = rate >= 5000.0 ? 1.0 : rate + 37.0;
  }
}
BENCHMARK(BM_GreedySolve);

void BM_ExactDpBuild(benchmark::State& state) {
  const auto& d = design();
  for (auto _ : state) {
    const ExactDpSolver solver(d.candidates(),
                               static_cast<double>(state.range(0)));
    benchmark::DoNotOptimize(&solver);
  }
}
BENCHMARK(BM_ExactDpBuild)->Arg(1000)->Arg(5000);

void BM_TableLookup(benchmark::State& state) {
  const auto& d = design();
  double rate = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.ideal_combination(rate));
    rate = rate >= 5000.0 ? 0.0 : rate + 13.0;
  }
}
BENCHMARK(BM_TableLookup);

void BM_Dispatch(benchmark::State& state) {
  const auto& d = design();
  const Combination combo = d.ideal_combination(2500.0);
  double load = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dispatch(d.candidates(), combo, load));
    load = load >= 2500.0 ? 0.0 : load + 11.0;
  }
}
BENCHMARK(BM_Dispatch);

void BM_ThresholdComputation(benchmark::State& state) {
  const Catalog catalog = real_catalog();
  for (auto _ : state) {
    benchmark::DoNotOptimize(BmlDesign::build(catalog, {.build_table = false}));
  }
}
BENCHMARK(BM_ThresholdComputation);

void BM_OraclePredictorQuery(benchmark::State& state) {
  DiurnalOptions options;
  options.noise = 0.05;
  const LoadTrace trace = diurnal_trace(options, 1);
  OracleMaxPredictor oracle;
  (void)oracle.predict(trace, 0, 378.0);  // build the cache once
  TimePoint t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.predict(trace, t, 378.0));
    t = (t + 17) % 86400;
  }
}
BENCHMARK(BM_OraclePredictorQuery);

void BM_SimulatorDay(benchmark::State& state) {
  auto d = std::make_shared<BmlDesign>(BmlDesign::build(real_catalog()));
  WorldCupOptions options;
  options.days = 1;
  options.peak = 3000.0;
  const LoadTrace trace = worldcup_like_trace(options);
  const Simulator simulator(d->candidates());
  for (auto _ : state) {
    BmlScheduler scheduler(d, std::make_shared<OracleMaxPredictor>());
    benchmark::DoNotOptimize(simulator.run(scheduler, trace));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.size()));
}
BENCHMARK(BM_SimulatorDay)->Unit(benchmark::kMillisecond);

void BM_WorldCupTraceGeneration(benchmark::State& state) {
  WorldCupOptions options;
  options.days = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(worldcup_like_trace(options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(options.days) * 86400);
}
BENCHMARK(BM_WorldCupTraceGeneration)->Arg(1)->Arg(7)
    ->Unit(benchmark::kMillisecond);

}  // namespace
