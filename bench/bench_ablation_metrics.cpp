// Energy-proportionality metrics (Section II's IPR and LDR, plus a
// composite score) for every Table I machine, the composed BML curve, and
// the BML-linear reference — quantifying the paper's claim that the
// heterogeneous combination is more energy proportional than any single
// machine.
#include <cstdio>

#include "core/sensitivity.hpp"
#include "experiments/ablations.hpp"
#include "util/table.hpp"

int main() {
  using namespace bml;
  std::puts("=== Energy proportionality metrics (IPR / LDR / score) ===\n");

  AsciiTable table({"power curve", "IPR (idle/peak, lower=better)",
                    "LDR (0=linear)", "proportionality score (1=ideal)"});
  for (const ProportionalityRow& row : run_proportionality_metrics())
    table.add_row({row.name, AsciiTable::num(row.ipr, 3),
                   AsciiTable::num(row.ldr, 3),
                   AsciiTable::num(row.score, 3)});
  std::fputs(table.render().c_str(), stdout);

  std::puts("\nReading: every single machine wastes a large idle fraction "
            "(IPR 0.35-0.84); the composed BML curve approaches the ideal "
            "because small machines carry the low-rate regime.");

  // Robustness of the design to Step 1 profiling error (+/- 2 %, the
  // simulated wattmeter's noise level).
  std::puts("\n=== Design sensitivity to profiling error (+2 % per "
            "parameter) ===\n");
  AsciiTable sens({"machine", "parameter", "candidates kept",
                   "max |threshold shift| (req/s)", "mean power drift"});
  for (const SensitivityRow& row :
       sensitivity_analysis(real_catalog(), 0.02)) {
    double worst_shift = 0.0;
    for (ReqRate shift : row.threshold_shift)
      worst_shift = std::max(worst_shift, std::abs(shift));
    sens.add_row({row.machine, to_string(row.parameter),
                  row.same_candidates ? "yes" : "NO",
                  AsciiTable::num(worst_shift, 0),
                  AsciiTable::num(row.mean_power_drift * 100.0, 2) + "%"});
  }
  std::fputs(sens.render().c_str(), stdout);
  std::puts("\nReading: within instrument noise the candidate set never "
            "changes and the ideal-power curve drifts by at most a few "
            "percent — the five-step methodology is robust to Step 1 "
            "measurement error.");
  return 0;
}
