// Reproduces Table I: "Performance and power profiles of each architecture".
//
// Runs the Step 1 profiling campaign on the simulated testbed for all five
// machines and prints the measured rows next to the paper's ground truth.
#include <cstdio>
#include <string>

#include "experiments/experiments.hpp"
#include "util/table.hpp"

int main() {
  using namespace bml;
  std::puts("=== Table I: performance and power profiles of each "
            "architecture ===");
  std::puts("(measured on the simulated testbed; truth in parentheses)\n");

  const Table1Result result = run_table1();

  AsciiTable table({"Architecture", "MaxPerf (reqs/s)", "Idle-Max Power (W)",
                    "Ont (s)", "OnE (J)", "Offt (s)", "OffE (J)",
                    "worst err"});
  for (const ProfiledArch& row : result.rows) {
    const auto& m = row.measured;
    const auto& t = row.truth;
    table.add_row(
        {t.name(),
         AsciiTable::num(m.max_perf(), 0) + " (" +
             AsciiTable::num(t.max_perf(), 0) + ")",
         AsciiTable::num(m.idle_power(), 1) + " - " +
             AsciiTable::num(m.max_power(), 1) + " (" +
             AsciiTable::num(t.idle_power(), 1) + " - " +
             AsciiTable::num(t.max_power(), 1) + ")",
         AsciiTable::num(m.on_cost().duration, 0),
         AsciiTable::num(m.on_cost().energy, 0) + " (" +
             AsciiTable::num(t.on_cost().energy, 0) + ")",
         AsciiTable::num(m.off_cost().duration, 0),
         AsciiTable::num(m.off_cost().energy, 1) + " (" +
             AsciiTable::num(t.off_cost().energy, 1) + ")",
         AsciiTable::num(row.worst_relative_error() * 100.0, 1) + "%"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nPaper reference rows (Table I): Paravance 1331 reqs/s, "
            "69.9-200.5 W; Taurus 860, 95.8-223.7; Graphene 272, 47.7-123.8; "
            "Chromebook 33, 4-7.6; Raspberry 9, 3.1-3.7.");
  return 0;
}
