// Reproduces Fig. 4: "Consumption of BML combination over an increasing
// performance rate, until maxPerf(Big), compared to Big and BML linear".
//
// Also prints the Section V-B acceptance numbers: final infrastructure
// Raspberry/Chromebook/Paravance with thresholds 1 / 10 / 529 req/s.
#include <cstdio>

#include "experiments/experiments.hpp"
#include "util/table.hpp"

int main() {
  using namespace bml;
  std::puts("=== Fig. 4: ideal BML combination power vs Big-only and "
            "BML-linear ===\n");

  const Fig4Result result = run_fig4(1.0);
  const BmlDesign& design = result.design;

  AsciiTable roles({"Architecture", "role", "min utilization threshold "
                                            "(req/s)"});
  for (std::size_t i = 0; i < design.candidates().size(); ++i)
    roles.add_row({design.candidates()[i].name(),
                   to_string(design.roles()[i]),
                   AsciiTable::num(design.thresholds()[i], 0)});
  std::fputs(roles.render().c_str(), stdout);
  std::puts("(paper: thresholds are respectively 1, 10 and 529 req/s)\n");

  AsciiTable curve({"rate (req/s)", "BML combination (W)", "Big only (W)",
                    "BML linear (W)", "combination"});
  for (std::size_t i = 0; i < result.rates.size(); i += 95) {
    const double r = result.rates[i];
    curve.add_row({AsciiTable::num(r, 0), AsciiTable::num(result.bml[i], 2),
                   AsciiTable::num(result.big_only[i], 2),
                   AsciiTable::num(result.linear[i], 2),
                   to_string(design.candidates(),
                             design.ideal_combination(r))});
  }
  std::fputs(curve.render().c_str(), stdout);

  // Aggregate gap metrics over the full 1 req/s grid.
  double bml_area = 0.0, big_area = 0.0, linear_area = 0.0;
  for (std::size_t i = 0; i < result.rates.size(); ++i) {
    bml_area += result.bml[i];
    big_area += result.big_only[i];
    linear_area += result.linear[i];
  }
  std::printf("\nMean power over 0..maxPerf(Big): BML %.1f W vs Big-only "
              "%.1f W (-%.0f%%), BML-linear %.1f W\n",
              bml_area / result.rates.size(),
              big_area / result.rates.size(),
              (1.0 - bml_area / big_area) * 100.0,
              linear_area / result.rates.size());
  return 0;
}
