// Reproduces Fig. 2: crossing points / minimum utilization thresholds on
// the illustrative catalog — Step 3 (left) vs Step 4 (right), showing how
// considering Medium+Little combinations raises Big's threshold.
#include <cstdio>

#include "core/crossing.hpp"
#include "experiments/experiments.hpp"
#include "util/table.hpp"

int main() {
  using namespace bml;
  std::puts("=== Fig. 2: crossing points between architectures (Step 3) and "
            "against combinations (Step 4) ===\n");

  const Fig2Result result = run_fig2();

  AsciiTable thresholds({"Architecture", "role", "Step 3 threshold (req/s)",
                         "Step 4 threshold (req/s)"});
  for (std::size_t i = 0; i < result.names.size(); ++i)
    thresholds.add_row({result.names[i],
                        to_string(result.design.roles()[i]),
                        AsciiTable::num(result.step3[i], 0),
                        AsciiTable::num(result.step4[i], 0)});
  std::fputs(thresholds.render().c_str(), stdout);

  // The power curves that cross: single Big vs best smaller combinations.
  const Catalog& cand = result.design.candidates();
  Catalog smaller(cand.begin() + 1, cand.end());
  const MinCostCurve mixed(smaller, cand[0].max_perf());
  std::puts("\nPower curves near Big's thresholds (W):");
  AsciiTable curves({"rate (req/s)", "single " + cand[0].name(),
                     "best homogeneous smaller", "best mixed smaller"});
  for (double r = 100.0; r <= cand[0].max_perf(); r += 50.0) {
    double homog = 1e300;
    for (const ArchitectureProfile& arch : smaller)
      homog = std::min(homog, homogeneous_cost(arch, r));
    curves.add_row({AsciiTable::num(r, 0),
                    AsciiTable::num(cand[0].power_at(r), 1),
                    AsciiTable::num(homog, 1),
                    AsciiTable::num(mixed.cost(r), 1)});
  }
  std::fputs(curves.render().c_str(), stdout);
  std::puts("\nPaper narrative check: Step 3 puts Big's threshold at "
            "Medium's max performance; Step 4 raises it (combinations of "
            "Medium+Little fill the gap).");
  return 0;
}
