// Reproduces Fig. 1: illustrative architecture profiles and the Step 2
// dominance filter ("A, B and C are good candidates ... D will be removed").
#include <cstdio>

#include "experiments/experiments.hpp"
#include "util/table.hpp"

int main() {
  using namespace bml;
  std::puts("=== Fig. 1: candidate selection on the illustrative catalog "
            "===\n");

  const Fig1Result result = run_fig1();

  AsciiTable profiles({"Architecture", "maxPerf (req/s)", "idle (W)",
                       "maxPower (W)", "verdict"});
  for (const ArchitectureProfile& arch : result.input) {
    std::string verdict = "kept (BML candidate)";
    for (const RemovedArch& removed : result.removed)
      if (removed.name == arch.name())
        verdict = "REMOVED: " + to_string(removed.reason) + " by " +
                  removed.dominated_by;
    profiles.add_row({arch.name(), AsciiTable::num(arch.max_perf(), 0),
                      AsciiTable::num(arch.idle_power(), 1),
                      AsciiTable::num(arch.max_power(), 1), verdict});
  }
  std::fputs(profiles.render().c_str(), stdout);

  std::puts("\nRepeated (homogeneous) power profiles, W at increasing "
            "performance rate:");
  AsciiTable series({"rate (req/s)", result.input[0].name(),
                     result.input[1].name(), result.input[2].name(),
                     result.input[3].name()});
  for (std::size_t i = 0; i < result.homogeneous_series[0].size(); i += 5) {
    series.add_row({AsciiTable::num(i * result.rate_step, 0),
                    AsciiTable::num(result.homogeneous_series[0][i], 1),
                    AsciiTable::num(result.homogeneous_series[1][i], 1),
                    AsciiTable::num(result.homogeneous_series[2][i], 1),
                    AsciiTable::num(result.homogeneous_series[3][i], 1)});
  }
  std::fputs(series.render().c_str(), stdout);
  return 0;
}
