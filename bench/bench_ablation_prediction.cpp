// Ablation benches beyond the paper's figures:
//   * prediction-error sweep (the paper's announced future work),
//   * look-ahead window sweep (why 2x the longest On duration),
//   * policy comparison (pro-active vs reactive vs hysteresis).
#include <cstdio>

#include "experiments/ablations.hpp"
#include "util/table.hpp"

namespace {

void print_rows(const char* title, const std::vector<bml::AblationRow>& rows) {
  using bml::AsciiTable;
  std::printf("--- %s ---\n", title);
  AsciiTable table({"scenario", "energy (kWh)", "vs lower bound",
                    "served", "reconfigs"});
  for (const bml::AblationRow& row : rows)
    table.add_row({row.label,
                   AsciiTable::num(bml::joules_to_kwh(row.total_energy), 3),
                   "+" + AsciiTable::num(row.overhead_vs_lower_bound_pct, 1) +
                       "%",
                   AsciiTable::num(row.served_fraction * 100.0, 3) + "%",
                   std::to_string(row.reconfigurations)});
  std::fputs(table.render().c_str(), stdout);
  std::puts("");
}

}  // namespace

int main() {
  using namespace bml;
  std::puts("=== Ablations: prediction error, window length, policy ===\n");

  AblationOptions options;
  options.days = 7;

  print_rows("prediction error sweep (multiplicative sigma, oracle window)",
             run_prediction_error_sweep({0.0, 0.05, 0.1, 0.2, 0.4}, options));

  print_rows("look-ahead window sweep (x longest On duration = 189 s)",
             run_window_sweep({0.5, 1.0, 2.0, 4.0, 8.0}, options));

  print_rows("scheduling policy comparison", run_policy_comparison(options));

  std::puts("Reading: the paper's 2x window is the knee — shorter windows "
            "lose requests during Big boots, longer ones pay idle energy "
            "for capacity nobody asked for yet.");
  return 0;
}
