#!/usr/bin/env bash
# Runs the microbenchmark suite and records the results as JSON at the
# repository root (BENCH_micro.json), seeding the performance trajectory
# across PRs. Usage:
#
#   bench/run_bench.sh [build-dir] [extra google-benchmark args...]
#
# The build directory defaults to ./build-bench, a dedicated Release tree
# this script configures (and builds) itself — benchmark numbers recorded
# from unoptimised builds are worse than useless, so the script refuses to
# write BENCH_micro.json unless the benchmark context reports a release
# build of the code under test (the bml_build_type key bench_micro stamps;
# google-benchmark's own library_build_type only describes how the system
# benchmark library was compiled).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-bench}"
shift || true

bench="${build_dir}/bench_micro"
if [[ ! -x "${bench}" ]]; then
  echo "configuring Release benchmark build in ${build_dir}" >&2
  cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
fi
# Always (re)build: recording numbers from a stale binary silently drops
# newly added benchmarks; an up-to-date incremental build is a no-op.
cmake --build "${build_dir}" --target bench_micro -j "$(nproc)"

out="${repo_root}/BENCH_micro.json"
tmp="$(mktemp)"
trap 'rm -f "${tmp}"' EXIT
"${bench}" \
  --benchmark_format=json \
  --benchmark_out="${tmp}" \
  --benchmark_out_format=json \
  "$@" >/dev/null

# Refuse to record numbers from a debug build of the code under test.
if ! grep -q '"bml_build_type": "release"' "${tmp}"; then
  echo "error: benchmark context does not report a release build:" >&2
  grep '"bml_build_type"\|"library_build_type"' "${tmp}" >&2 || true
  echo "rebuild with -DCMAKE_BUILD_TYPE=Release (or point the script at a" >&2
  echo "Release build dir) before recording BENCH_micro.json" >&2
  exit 1
fi

# Refuse to record a report that silently dropped a gated benchmark.
# CI's regression gates read these names out of the JSON; a rename or an
# accidental filter would otherwise turn the gate into a no-op instead
# of a failure.
python3 - "${tmp}" <<'EOF'
import json
import sys

GATED = [
    "BM_SimulatorDay",
    "BM_MultiAppSimulatorDay",
    "BM_FleetScaleDay",
    "BM_FleetScaleChurnDay",
    "BM_SimulatorWeekSteadyEventDriven",
    "BM_SimulatorWeekNoisyEventDriven",
    "BM_SimulatorWeekNoisyReference",
    "BM_SimulatorWeekCorrelatedFaultsEventDriven",
    "BM_SimulatorWeekCorrelatedFaultsReference",
]
with open(sys.argv[1]) as f:
    report = json.load(f)
names = [b["name"] for b in report.get("benchmarks", [])]
missing = [g for g in GATED
           if not any(n == g or n.startswith(g + "/") for n in names)]
if missing:
    print("error: gated benchmark(s) missing from the report:",
          file=sys.stderr)
    for g in missing:
        print(f"  {g}", file=sys.stderr)
    print("refusing to record BENCH_micro.json — a gated benchmark was "
          "renamed, deleted, or filtered out; CI regression gates would "
          "silently stop gating.", file=sys.stderr)
    sys.exit(1)
EOF

mv "${tmp}" "${out}"
trap - EXIT
echo "wrote ${out}"

# Append a timestamped record to the append-only history, so the
# performance trajectory across PRs stays inspectable after BENCH_micro
# is overwritten.
history="${repo_root}/BENCH_history.jsonl"
python3 - "${out}" "${history}" <<'EOF'
import datetime
import json
import sys

out_path, history_path = sys.argv[1], sys.argv[2]
with open(out_path) as f:
    report = json.load(f)
record = {
    "recorded_at": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
    "benchmarks": {
        b["name"]: {
            "real_time": b["real_time"],
            "time_unit": b["time_unit"],
            **({"items_per_second": b["items_per_second"]}
               if "items_per_second" in b else {}),
        }
        for b in report["benchmarks"]
    },
}
with open(history_path, "a") as f:
    f.write(json.dumps(record, sort_keys=True) + "\n")
EOF
echo "appended ${history}"
