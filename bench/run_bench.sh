#!/usr/bin/env bash
# Runs the microbenchmark suite and records the results as JSON at the
# repository root (BENCH_micro.json), seeding the performance trajectory
# across PRs. Usage:
#
#   bench/run_bench.sh [build-dir] [extra google-benchmark args...]
#
# The build directory defaults to ./build and must already contain a
# compiled bench_micro (cmake -B build -S . && cmake --build build -j).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
shift || true

bench="${build_dir}/bench_micro"
if [[ ! -x "${bench}" ]]; then
  echo "error: ${bench} not found — build the project first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

out="${repo_root}/BENCH_micro.json"
"${bench}" \
  --benchmark_format=json \
  --benchmark_out="${out}" \
  --benchmark_out_format=json \
  "$@" >/dev/null
echo "wrote ${out}"
