// Ablations on reconfiguration policy robustness:
//   * cost-aware reconfiguration (the paper's closing future work) vs the
//     plain pro-active scheduler,
//   * boot fault injection (jittered / retried boots),
//   * the RAPL power-capping foil from Section II.
#include <cstdio>

#include "experiments/ablations.hpp"
#include "util/table.hpp"

namespace {

void print_rows(const char* title, const std::vector<bml::AblationRow>& rows) {
  using bml::AsciiTable;
  std::printf("--- %s ---\n", title);
  AsciiTable table({"scenario", "energy (kWh)", "vs lower bound", "served",
                    "reconfigs"});
  for (const bml::AblationRow& row : rows)
    table.add_row({row.label,
                   AsciiTable::num(bml::joules_to_kwh(row.total_energy), 3),
                   "+" + AsciiTable::num(row.overhead_vs_lower_bound_pct, 1) +
                       "%",
                   AsciiTable::num(row.served_fraction * 100.0, 3) + "%",
                   std::to_string(row.reconfigurations)});
  std::fputs(table.render().c_str(), stdout);
  std::puts("");
}

}  // namespace

int main() {
  using namespace bml;
  std::puts("=== Ablations: cost-aware reconfiguration, fault injection, "
            "RAPL foil ===\n");

  AblationOptions options;
  options.days = 7;

  print_rows("cost-aware vs plain pro-active scheduling",
             run_cost_aware_comparison(options));

  print_rows("boot fault injection (pro-active oracle, 2x window)",
             run_fault_injection_sweep({0.0, 0.1, 0.3, 0.6}, options));

  std::puts("--- ideally RAPL-capped homogeneous Big fleet vs BML "
            "(Section II) ---");
  AsciiTable rapl({"rate (req/s)", "BML (W)", "RAPL-capped 4xBig (W)",
                   "RAPL / BML"});
  for (const RaplRow& row : run_rapl_comparison()) {
    const std::string ratio =
        row.bml > 0.01
            ? AsciiTable::num(row.rapl_big / row.bml, 1) + "x"
            : "-";
    rapl.add_row({AsciiTable::num(row.rate, 0), AsciiTable::num(row.bml, 1),
                  AsciiTable::num(row.rapl_big, 1), ratio});
  }
  std::fputs(rapl.render().c_str(), stdout);
  std::puts("\nReading: power capping tracks load but keeps every idle "
            "machine burning its floor draw; the heterogeneous combination "
            "sheds it by switching to smaller machines.");
  return 0;
}
