// Reproduces Fig. 3: "Power and performance profiles of web servers
// acquired from experiments on 5 different architectures".
#include <cstdio>

#include "experiments/experiments.hpp"
#include "util/table.hpp"

int main() {
  using namespace bml;
  std::puts("=== Fig. 3: power/performance profiles of the five real "
            "architectures ===\n");

  const Fig3Result result = run_fig3(11);

  for (const Fig3Series& series : result.series) {
    std::printf("--- %s ---\n", series.name.c_str());
    AsciiTable table({"rate (req/s)", "power (W)"});
    for (std::size_t i = 0; i < series.rates.size(); ++i)
      table.add_row({AsciiTable::num(series.rates[i], 0),
                     AsciiTable::num(series.powers[i], 2)});
    std::fputs(table.render().c_str(), stdout);
  }
  std::puts("Endpoints match Table I: e.g. paravance spans 69.9 W idle to "
            "200.5 W at 1331 req/s; raspberry 3.1 W to 3.7 W at 9 req/s.");
  return 0;
}
