// Reproduces Fig. 5: "Energy consumption comparison with lower and upper
// bounds" — per-day energy over 87 World-Cup days for UpperBound Global,
// UpperBound PerDay, Big-Medium-Little, and LowerBound Theoretical, plus
// the paper's summary statistic (BML % over the lower bound: the paper
// reports avg 32 %, min 6.8 %, max 161.4 % on the real WC98 trace; the
// synthetic trace reproduces the ordering and the quiet-day/busy-day
// pattern — see EXPERIMENTS.md).
//
// Pass --quick to replay 7 days instead of 87.
#include <cstdio>
#include <cstring>

#include "experiments/experiments.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bml;
  Fig5Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      options.trace.days = 7;
      options.trace.tournament_start_day = 3;
      options.trace.tournament_end_day = 6;
    }
  }

  std::printf("=== Fig. 5: per-day energy vs lower and upper bounds (%zu "
              "days, synthetic World-Cup-like trace) ===\n\n",
              options.trace.days);

  const Fig5Result result = run_fig5(options);

  AsciiTable table({"day", "LowerBound (kWh)", "BML (kWh)", "BML vs LB",
                    "UpperBound PerDay (kWh)", "UpperBound Global (kWh)"});
  const std::size_t stride = options.trace.days > 20 ? 5 : 1;
  for (std::size_t d = 0; d < result.lower_bound.size(); d += stride)
    table.add_row({std::to_string(d + 6),  // the paper replays days 6..92
                   AsciiTable::num(joules_to_kwh(result.lower_bound[d]), 3),
                   AsciiTable::num(joules_to_kwh(result.bml[d]), 3),
                   "+" + AsciiTable::num(result.bml_overhead_pct[d], 1) + "%",
                   AsciiTable::num(joules_to_kwh(result.per_day_bound[d]), 3),
                   AsciiTable::num(joules_to_kwh(result.global_bound[d]), 3)});
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nBML energy over LowerBound Theoretical: avg +%.1f%%  "
              "min +%.1f%%  max +%.1f%%\n",
              result.mean_overhead_pct(), result.min_overhead_pct(),
              result.max_overhead_pct());
  std::printf("(paper, real WC98 trace: avg +32%%, min +6.8%%, max "
              "+161.4%%)\n");
  std::printf("\nBML: %d reconfigurations, %.3f%% requests served, "
              "%lld violation seconds\n",
              result.bml_sim.reconfigurations,
              result.bml_sim.qos.served_fraction() * 100.0,
              static_cast<long long>(result.bml_sim.qos.violation_seconds));

  double lb = 0.0, bml = 0.0, per_day = 0.0, global = 0.0;
  for (std::size_t d = 0; d < result.lower_bound.size(); ++d) {
    lb += result.lower_bound[d];
    bml += result.bml[d];
    per_day += result.per_day_bound[d];
    global += result.global_bound[d];
  }
  std::printf("\nWhole-trace energy (kWh): LowerBound %.1f | BML %.1f | "
              "UpperBound PerDay %.1f (%.1fx BML) | UpperBound Global %.1f "
              "(%.1fx BML)\n",
              joules_to_kwh(lb), joules_to_kwh(bml), joules_to_kwh(per_day),
              per_day / bml, joules_to_kwh(global), global / bml);
  return 0;
}
