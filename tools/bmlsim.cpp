// bmlsim — the scenario engine's command-line front end.
//
//   bmlsim run <spec.scn>  [--csv FILE] [--per-day] [--metrics]
//              [--trace-out FILE] [--trace-sample N]
//       Run one scenario and print its summary (per-day energies with
//       --per-day); --csv dumps the single-row sweep CSV. Multi-tenant
//       specs ([app] sections) additionally print the per-application
//       energy / QoS attribution table; runtime-fault specs (faults.mtbf)
//       add the cluster failure/availability line and per-app avail % /
//       failures columns. --metrics prints the simulator self-metrics
//       (deterministic "name value" lines); --trace-out writes the run's
//       timeline as Chrome trace-event JSON (open in ui.perfetto.dev or
//       chrome://tracing), sampling counter tracks every --trace-sample
//       seconds (default 60). Recording a timeline replays on the
//       per-second reference path, like event logging.
//
//   bmlsim sweep <spec.scn> [--threads N] [--csv FILE] [--metrics]
//               [--perf-report]
//       Expand the spec's `sweep` axes into the grid, run it in parallel,
//       print the summary table, and optionally write the CSV. The CSV
//       bytes are identical for every --threads value, and so is the
//       --metrics output (per-scenario metric shards merge in grid
//       order). --perf-report prints per-scenario wall clock + span/tick
//       counts and the build-cache totals (console-only numbers).
//
//   bmlsim list
//       Print every registered catalog, trace generator, scheduler, and
//       predictor with its parameters.
//
//   bmlsim print <spec.scn>
//       Parse a spec and echo its canonical form (a format round-trip).
//
// Exit codes: 0 success, 1 usage error, 2 spec/runtime error.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "scenario/registry.hpp"
#include "scenario/scenario_spec.hpp"
#include "scenario/sweep.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace bml;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s run <spec.scn> [--csv FILE] [--per-day] "
               "[--metrics] [--trace-out FILE] [--trace-sample N]\n"
               "       %s sweep <spec.scn> [--threads N] [--csv FILE] "
               "[--metrics] [--perf-report]\n"
               "       %s list\n"
               "       %s print <spec.scn>\n",
               argv0, argv0, argv0, argv0);
  return 1;
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << text;
}

void print_components(const char* title,
                      const std::vector<ComponentInfo>& components) {
  std::printf("%s\n", title);
  for (const ComponentInfo& c : components)
    std::printf("  %-14s %s\n", c.name.c_str(), c.summary.c_str());
}

int cmd_list() {
  print_components("catalogs", catalog_components());
  print_components("traces", trace_components());
  print_components("schedulers", scheduler_components());
  print_components("predictors", predictor_components());
  return 0;
}

int cmd_print(const std::string& path) {
  std::fputs(write_scenario(load_scenario(path)).c_str(), stdout);
  return 0;
}

int cmd_run(const std::string& path, const std::string& csv_path,
            bool per_day, bool metrics, const std::string& trace_out,
            int trace_sample) {
  const ScenarioSpec spec = load_scenario(path);
  if (!spec.sweeps.empty())
    std::fprintf(stderr,
                 "note: spec declares %zu sweep axes; `run` executes the "
                 "base point only (use `sweep`)\n",
                 spec.sweeps.size());

  ScenarioSpec base = spec;
  base.sweeps.clear();
  if (metrics) base.obs_metrics = true;
  if (!trace_out.empty()) {
    base.obs_trace = true;
    if (trace_sample > 0) base.obs_sample = trace_sample;
  }
  SweepOptions options;
  options.threads = 1;
  options.keep_results = true;
  const SweepReport report = run_sweep(base, options);
  std::fputs(report.summary_table().c_str(), stdout);

  const SimulationResult& sim = report.results.front().sim;
  std::printf("\nscheduler %s: %.3f kWh compute + %.3f kWh reconfiguration "
              "over %d reconfigurations\n",
              sim.scheduler_name.c_str(), joules_to_kwh(sim.compute_energy),
              joules_to_kwh(sim.reconfiguration_energy), sim.reconfigurations);
  const bool grouped = spec.fault_groups > 0 && spec.fault_group_mtbf > 0.0;
  const bool faulty = spec.fault_mtbf > 0.0 || grouped;
  if (faulty) {
    std::printf("faults: %d machine failures, availability %.4f%%, "
                "%.0f req-s capacity lost\n",
                sim.machine_failures, 100.0 * sim.availability,
                sim.lost_capacity);
    if (grouped)
      std::printf("  %d rack strikes across %d groups (%s repair crews)\n",
                  sim.group_strikes, spec.fault_groups,
                  spec.fault_crews > 0 ? std::to_string(spec.fault_crews).c_str()
                                       : "unlimited");
  }
  bool slo = spec.apps.empty() && spec.slo_availability > 0.0;
  for (const AppSpec& app : spec.apps)
    if (app.slo_availability > 0.0) slo = true;
  if (slo)
    std::printf("slo: %lld s with spares provisioned, %.3f kWh spare energy "
                "(%.0f s window)\n",
                static_cast<long long>(sim.spare_seconds),
                joules_to_kwh(sim.spare_energy), spec.slo_window);
  const bool degraded = spec.degrade_overload_factor > 0.0;
  if (degraded)
    std::printf("degrade: %lld s overloaded, %.0f req-s lost to the "
                "contention penalty (factor %.2f, penalty %.2f)\n",
                static_cast<long long>(sim.overload_seconds),
                sim.penalty_lost_capacity, spec.degrade_overload_factor,
                spec.degrade_penalty);
  if (sim.preemptions > 0)
    std::printf("priority: %d preemptions backfilled high-priority apps "
                "after strikes\n",
                sim.preemptions);
  const std::vector<WorkloadResult>& apps = report.results.front().apps;
  if (apps.size() >= 2) {
    std::vector<std::string> columns{"app",           "scheduler",
                                     "compute (kWh)", "reconfig (kWh)",
                                     "QoS viol (s)",  "served %"};
    if (faulty) {
      columns.push_back("avail %");
      columns.push_back("failures");
    }
    if (slo) columns.push_back("spare (s)");
    if (degraded) columns.push_back("overload (s)");
    if (sim.preemptions > 0) columns.push_back("preempted (s)");
    AsciiTable per_app(columns);
    for (const WorkloadResult& app : apps) {
      std::vector<std::string> cells{
          app.name, app.scheduler_name,
          AsciiTable::num(joules_to_kwh(app.compute_energy), 3),
          AsciiTable::num(joules_to_kwh(app.reconfiguration_energy), 3),
          std::to_string(app.qos_stats.violation_seconds),
          AsciiTable::num(100.0 * app.qos_stats.served_fraction(), 3)};
      if (faulty) {
        cells.push_back(AsciiTable::num(100.0 * app.availability, 4));
        cells.push_back(std::to_string(app.failures));
      }
      if (slo) cells.push_back(std::to_string(app.spare_seconds));
      if (degraded) cells.push_back(std::to_string(app.overload_seconds));
      if (sim.preemptions > 0)
        cells.push_back(std::to_string(app.preempted_seconds));
      per_app.add_row(cells);
    }
    std::fputs(per_app.render().c_str(), stdout);
  }
  if (per_day) {
    AsciiTable table({"day", "compute (kWh)", "reconfig (kWh)"});
    for (std::size_t d = 0; d < sim.per_day_compute.size(); ++d)
      table.add_row({std::to_string(d),
                     AsciiTable::num(joules_to_kwh(sim.per_day_compute[d]), 3),
                     AsciiTable::num(
                         joules_to_kwh(sim.per_day_reconfiguration[d]), 3)});
    std::fputs(table.render().c_str(), stdout);
  }
  if (!trace_out.empty()) {
    write_text_file(trace_out, chrome_trace_json(sim.timeline));
    std::printf("wrote %s (%zu samples, %zu events — open in "
                "ui.perfetto.dev)\n",
                trace_out.c_str(), sim.timeline.samples.size(),
                sim.timeline.events.size());
  }
  if (metrics) {
    // The sweep registry already holds the sim.* self-metrics; the event
    // counters only exist when the run logged events (a timeline forces
    // that).
    MetricsRegistry registry = report.metrics;
    if (sim.events.total() > 0) export_event_counts(sim.events, registry);
    std::printf("\nmetrics:\n%s", registry.to_text().c_str());
  }
  if (!csv_path.empty()) {
    write_text_file(csv_path, report.to_csv());
    std::printf("wrote %s\n", csv_path.c_str());
  }
  return 0;
}

int cmd_sweep(const std::string& path, unsigned threads,
              const std::string& csv_path, bool metrics, bool perf) {
  ScenarioSpec spec = load_scenario(path);
  // The perf report's span/tick columns come from the same self-metrics.
  if (metrics || perf) spec.obs_metrics = true;
  SweepOptions options;
  options.threads = threads;
  const SweepReport report = run_sweep(spec, options);
  std::fputs(report.summary_table().c_str(), stdout);
  std::printf("%zu scenarios on %u threads in %.2f s\n", report.rows.size(),
              report.threads, report.wall_seconds);
  if (perf) std::fputs(report.perf_report().c_str(), stdout);
  if (metrics)
    std::printf("\nmetrics:\n%s", report.metrics.to_text().c_str());
  if (!csv_path.empty()) {
    write_text_file(csv_path, report.to_csv());
    std::printf("wrote %s\n", csv_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string command = argv[1];

  std::string spec_path;
  std::string csv_path;
  std::string trace_out;
  unsigned threads = 0;
  bool per_day = false;
  bool metrics = false;
  bool perf_report = false;
  int trace_sample = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv" && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (arg == "--trace-sample" && i + 1 < argc) {
      const char* text = argv[++i];
      std::int64_t value = 0;
      try {
        value = parse_int(text);
      } catch (const std::exception&) {
        value = 0;
      }
      if (value < 1) {
        std::fprintf(stderr,
                     "%s: --trace-sample must be a positive integer, got "
                     "'%s'\n",
                     argv[0], text);
        return 1;
      }
      trace_sample = static_cast<int>(value);
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--perf-report") {
      perf_report = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      // Strict full-token parsing: "--threads 3x" is an error naming the
      // flag, never a silent 3.
      const char* text = argv[++i];
      std::int64_t value = 0;
      try {
        value = parse_int(text);
      } catch (const std::exception&) {
        value = -1;
      }
      if (value < 0) {
        std::fprintf(stderr,
                     "%s: --threads must be a non-negative integer, got "
                     "'%s'\n",
                     argv[0], text);
        return 1;
      }
      threads = static_cast<unsigned>(value);
    } else if (arg == "--per-day") {
      per_day = true;
    } else if (!arg.starts_with("--") && spec_path.empty()) {
      spec_path = arg;
    } else {
      return usage(argv[0]);
    }
  }

  try {
    if (command == "list") return cmd_list();
    if (spec_path.empty()) return usage(argv[0]);
    if (command == "print") return cmd_print(spec_path);
    if (command == "run")
      return cmd_run(spec_path, csv_path, per_day, metrics, trace_out,
                     trace_sample);
    if (command == "sweep")
      return cmd_sweep(spec_path, threads, csv_path, metrics, perf_report);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bmlsim: %s\n", e.what());
    return 2;
  }
  return usage(argv[0]);
}
